"""Server-side physical device wrappers and the device LOUD.

"A special LOUD tree, called the device LOUD, encapsulates all of the
available functions in every device controlled by the server.  The
device LOUD tree contains a LOUD for every physical device, and if two
devices are hard-wired, they are wired in the device LOUD.  Each LOUD in
the device LOUD is given a unique id that can be used by an application
to monitor the device."  (paper section 5.1)

A :class:`PhysicalWrapper` pairs one hub hardware endpoint with its
server-visible identity: a low (server-owned) resource id, a class,
capability attributes, ambient domain, hard-wiring group, and -- for
telephone lines -- the signaling relay that turns exchange callbacks
into protocol events.
"""

from __future__ import annotations

from ..hardware.devices import LineDevice, MicrophoneDevice, SpeakerDevice
from ..protocol import events as ev
from ..protocol.attributes import (
    ATTR_AGC,
    ATTR_AMBIENT_DOMAIN,
    ATTR_CALLER_ID,
    ATTR_DIGITAL,
    ATTR_HARD_WIRED,
    ATTR_NAME,
    ATTR_PAUSE_COMPRESSION,
    ATTR_PAUSE_DETECTION,
    ATTR_PHONE_NUMBER,
    AttributeList,
)
from ..protocol.requests import DeviceDescription
from ..protocol.types import DeviceClass, DeviceState, EventCode


class PhysicalWrapper:
    """One physical device as the server sees it."""

    def __init__(self, device_id: int, device_class: DeviceClass,
                 hardware, domain: str,
                 hard_group: int | None = None,
                 exclusive: bool = False) -> None:
        self.device_id = device_id
        self.device_class = device_class
        self.hardware = hardware
        self.domain = domain
        self.hard_group = hard_group
        #: True if only one LOUD may use this device at a time
        #: (telephone lines); speakers and microphones are shared.
        self.exclusive = exclusive
        self.bound_vdevices: list = []

    @property
    def name(self) -> str:
        return self.hardware.name

    def attributes(self) -> AttributeList:
        attrs = AttributeList({
            ATTR_NAME: self.name,
            ATTR_AMBIENT_DOMAIN: self.domain,
        })
        if self.hard_group is not None:
            attrs[ATTR_HARD_WIRED] = True
        return attrs

    def describe(self) -> DeviceDescription:
        return DeviceDescription(self.device_id, self.device_class,
                                 self.name, self.attributes(), [])

    def matches(self, requested: AttributeList) -> bool:
        """Does this device satisfy a virtual device's constraints?

        "The attributes can specify a device either tightly or loosely.
        For instance, a loose specification might be 'give me a
        speaker'.  A more tightly specified list ... 'give me the left
        speaker'."  (paper section 5.1)
        """
        wanted_id = requested.get("device-id")
        if wanted_id is not None and int(wanted_id) != self.device_id:
            return False
        wanted_name = requested.get(ATTR_NAME)
        if wanted_name is not None and wanted_name != self.name:
            return False
        wanted_domain = requested.get(ATTR_AMBIENT_DOMAIN)
        if wanted_domain is not None and wanted_domain != self.domain:
            return False
        return True


class SpeakerWrapper(PhysicalWrapper):
    def __init__(self, device_id: int, hardware: SpeakerDevice) -> None:
        super().__init__(device_id, DeviceClass.OUTPUT, hardware,
                         hardware.domain)


class MicrophoneWrapper(PhysicalWrapper):
    def __init__(self, device_id: int, hardware: MicrophoneDevice) -> None:
        super().__init__(device_id, DeviceClass.INPUT, hardware,
                         hardware.domain)


class TelephoneWrapper(PhysicalWrapper):
    """A telephone line; relays exchange signaling to the server."""

    def __init__(self, device_id: int, hardware: LineDevice, server,
                 digital: bool = False) -> None:
        super().__init__(device_id, DeviceClass.TELEPHONE, hardware,
                         hardware.domain, exclusive=True)
        self.server = server
        self.digital = digital
        hardware.add_listener(self)

    def attributes(self) -> AttributeList:
        attrs = super().attributes()
        attrs[ATTR_PHONE_NUMBER] = self.hardware.number
        attrs[ATTR_CALLER_ID] = True
        attrs[ATTR_DIGITAL] = self.digital
        return attrs

    def matches(self, requested: AttributeList) -> bool:
        """Telephones can additionally be selected by their number
        ("every telephone will have one or more numbers ... associated
        with it", paper section 5.1)."""
        if not super().matches(requested):
            return False
        wanted_number = requested.get(ATTR_PHONE_NUMBER)
        if wanted_number is not None \
                and str(wanted_number) != self.hardware.number:
            return False
        return True

    def attach_vdevice(self, vdevice) -> None:
        if vdevice not in self.bound_vdevices:
            self.bound_vdevices.append(vdevice)

    def detach_vdevice(self, vdevice) -> None:
        if vdevice in self.bound_vdevices:
            self.bound_vdevices.remove(vdevice)

    # -- line listener callbacks: fan out to vdevices + device LOUD -----------

    def _device_state_event(self, state: DeviceState,
                            args: AttributeList | None = None) -> None:
        """DEVICE_STATE on the device-LOUD id, for monitors.

        "Because the answering machine LOUD is unmapped, the application
        cannot tell, from the LOUD, if the telephone rings.  Therefore it
        monitors the device LOUD telephone." (paper section 5.9 footnote)
        """
        self.server.events.emit(
            EventCode.DEVICE_STATE, self.device_id, detail=int(state),
            sample_time=self.server.hub.sample_time,
            args=args or AttributeList())

    def on_ring_start(self, caller_info) -> None:
        args = AttributeList({ev.ARG_DEVICE_ID: self.device_id})
        if caller_info is not None:
            args[ev.ARG_CALLER_ID] = caller_info.number
            if caller_info.forwarded_from is not None:
                args[ev.ARG_FORWARDED_FROM] = caller_info.forwarded_from
        self._device_state_event(DeviceState.RINGING, args)
        for vdevice in list(self.bound_vdevices):
            vdevice.on_ring_start(caller_info)

    def on_ring_stop(self) -> None:
        self._device_state_event(DeviceState.ON_HOOK)

    def on_answered(self) -> None:
        self._device_state_event(DeviceState.OFF_HOOK)
        for vdevice in list(self.bound_vdevices):
            vdevice.on_answered()

    def on_far_hangup(self) -> None:
        self._device_state_event(DeviceState.ON_HOOK)
        for vdevice in list(self.bound_vdevices):
            vdevice.on_far_hangup()

    def on_call_failed(self, reason: str) -> None:
        self._device_state_event(DeviceState.IDLE)
        for vdevice in list(self.bound_vdevices):
            vdevice.on_call_failed(reason)


#: Capability attributes advertised by software recorders.
RECORDER_CAPABILITIES = AttributeList({
    ATTR_AGC: True,
    ATTR_PAUSE_DETECTION: True,
    ATTR_PAUSE_COMPRESSION: True,
})


def build_wrappers(server) -> list[PhysicalWrapper]:
    """Create wrappers for every hub device, assigning server ids."""
    wrappers: list[PhysicalWrapper] = []
    next_id = 2     # 1 is the device LOUD itself
    hard_group_members = {"speakerphone-speaker", "speakerphone-mic",
                          "speakerphone-line"}
    for hardware in server.hub.devices:
        hard_group = 1 if hardware.name in hard_group_members else None
        if isinstance(hardware, SpeakerDevice):
            wrapper = SpeakerWrapper(next_id, hardware)
        elif isinstance(hardware, MicrophoneDevice):
            wrapper = MicrophoneWrapper(next_id, hardware)
        elif isinstance(hardware, LineDevice):
            wrapper = TelephoneWrapper(next_id, hardware, server)
        else:
            continue
        wrapper.hard_group = hard_group
        wrappers.append(wrapper)
        next_id += 1
    return wrappers
