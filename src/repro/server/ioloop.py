"""Selector-based I/O shards: the C10k connection backend.

The thread backend spends two OS threads per client (reader + writer
pumps), which caps concurrency at thread-scheduler scale.  This module
replaces them with a small pool of **I/O shards**: each shard is one
thread running a ``selectors`` loop that owns N client sockets, does
non-blocking reads into the connection's zero-copy
:class:`~repro.protocol.wire.MessageStream` buffers
(:meth:`~repro.protocol.wire.MessageStream.read_available`), feeds
complete requests into the existing batched dispatch
(:meth:`~.core.AudioServer.dispatch_batch`), and drains each client's
bounded ``_OutboundQueue`` through writability callbacks.

Everything above the transport is untouched: the block-cycle hub
thread, the ranked lock hierarchy, backpressure (oldest-event shedding)
and stall-deadline eviction, and the wire format are byte-identical to
the thread backend, which remains the oracle (tests/test_ioloop.py).

Cross-thread signalling goes through a per-shard wakeup socketpair: the
hub thread queueing events, the stall sweep evicting a client, and the
connection manager registering a fresh socket all append an op and
write one byte; the shard drains both on its next loop turn.  No
ranked lock is ever held across a socket op or a selector wait
(scripts/check_lock_discipline.py enforces this for the whole module).

Metrics: ``ioloop.shards``, ``ioloop.clients``, ``ioloop.accepts``,
``ioloop.reads``, ``ioloop.writes``, ``ioloop.wakeups``,
``ioloop.loop_lag_us`` (time a shard spends handling one batch of ready
events -- the latency other clients on the shard see), and
``ioloop.imbalance`` (max minus min clients across shards).
"""

from __future__ import annotations

import collections
import logging
import os
import selectors
import socket
import threading
import time

from ..obs import MICROSECOND_BUCKETS
from ..protocol.wire import (
    ConnectionClosed,
    HEADER_SIZE,
    MessageKind,
    MessageStream,
    WireFormatError,
)
from .clients import _SHUTDOWN, MAX_DISPATCH_BATCH

log = logging.getLogger(__name__)

#: Most messages one flush pass writes before yielding to other clients.
MAX_FLUSH_BATCH = 64


def default_shard_count() -> int:
    """REPRO_IO_SHARDS, else a small pool scaled to the core count."""
    configured = os.environ.get("REPRO_IO_SHARDS", "")
    if configured:
        return max(1, int(configured))
    return max(2, min(8, os.cpu_count() or 1))


class _ShardClient:
    """Per-connection shard state: framing stream and write-out cursor."""

    __slots__ = ("client", "stream", "out_view", "out_size", "sent",
                 "want_write", "flush_queued", "gone")

    def __init__(self, client) -> None:
        self.client = client
        self.stream = MessageStream(client.sock)
        #: The partially-written encoded message, or None when idle.
        self.out_view: memoryview | None = None
        self.out_size = 0
        self.sent = 0
        self.want_write = False
        #: Guarded by the shard's op lock: a flush op is already queued.
        self.flush_queued = False
        self.gone = False


class IOShard:
    """One selector loop owning a share of the client sockets."""

    def __init__(self, pool: "IOShardPool", index: int) -> None:
        self.pool = pool
        self.server = pool.server
        self.index = index
        #: Clients currently assigned (written under the pool lock; the
        #: pool balances new registrations onto the smallest shard).
        self.client_count = 0
        self._selector = selectors.DefaultSelector()
        self._states: dict[object, _ShardClient] = {}
        self._ops: collections.deque = collections.deque()
        self._ops_lock = threading.Lock()
        self._wakeup_rx, self._wakeup_tx = socket.socketpair()
        self._wakeup_rx.setblocking(False)
        self._wakeup_tx.setblocking(False)
        self._selector.register(self._wakeup_rx, selectors.EVENT_READ, None)
        self._running = False
        self._thread: threading.Thread | None = None

    # -- cross-thread entry points -------------------------------------------

    def defer_add(self, client) -> None:
        """Queue a freshly-handshaken connection for this shard."""
        with self._ops_lock:
            self._ops.append(("add", client))
        self._signal()

    def defer_close(self, client) -> None:
        """Queue a teardown (eviction, server stop, client.close())."""
        with self._ops_lock:
            self._ops.append(("close", client))
        self._signal()

    def _make_ready_hook(self, state: _ShardClient):
        """The outbound queue's on_ready: one queued flush per burst."""
        def on_ready() -> None:
            with self._ops_lock:
                if state.flush_queued or state.gone:
                    return
                state.flush_queued = True
                self._ops.append(("flush", state.client))
            self._signal()
        return on_ready

    def _signal(self) -> None:
        try:
            self._wakeup_tx.send(b"\0")
        except (BlockingIOError, InterruptedError):
            pass    # pipe already full: a wakeup is pending anyway
        except OSError:
            pass    # shard shut down under us

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._running = True
        self._thread = threading.Thread(
            target=self._run, name="io-shard-%d" % self.index, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._running = False
        self._signal()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for state in list(self._states.values()):
            self._teardown(state)
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._wakeup_rx, self._wakeup_tx):
            try:
                sock.close()
            except OSError:
                pass

    # -- the loop ------------------------------------------------------------

    def _run(self) -> None:
        pool = self.pool
        while self._running:
            try:
                events = self._selector.select()
            except OSError:
                continue
            started = time.perf_counter()
            for key, mask in events:
                if key.data is None:        # the wakeup pipe
                    self._drain_wakeup()
                    continue
                state: _ShardClient = key.data
                if state.gone:
                    continue
                try:
                    if mask & selectors.EVENT_WRITE:
                        self._flush(state)
                    if not state.gone and (mask & selectors.EVENT_READ):
                        self._on_readable(state)
                except Exception:
                    log.exception("io-shard-%d: client %r handler failed",
                                  self.index, state.client.name)
                    self._teardown(state)
            self._process_ops()
            if events:
                pool._m_loop_lag.observe(
                    (time.perf_counter() - started) * 1e6)

    def _drain_wakeup(self) -> None:
        drained = 0
        while True:
            try:
                chunk = self._wakeup_rx.recv(4096)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                break
            if not chunk:
                break
            drained += len(chunk)
        if drained:
            self.pool._m_wakeups.inc(drained)

    def _process_ops(self) -> None:
        while True:
            with self._ops_lock:
                if not self._ops:
                    return
                op, target = self._ops.popleft()
                if op == "flush":
                    state = self._states.get(target)
                    if state is not None:
                        state.flush_queued = False
            if op == "add":
                self._add_client(target)
            elif op == "close":
                state = self._states.get(target)
                if state is not None:
                    self._teardown(state)
            elif op == "flush":
                if state is not None and not state.gone:
                    self._flush(state)

    # -- per-client handling -------------------------------------------------

    def _add_client(self, client) -> None:
        if not self._running or client.closed:
            # Registered during shutdown (or closed mid-handshake):
            # finish the disconnect path instead of leaking the socket.
            client.io_shard = None
            self.pool.client_removed(self)
            self.server.client_disconnected(client)
            return
        client.sock.setblocking(False)
        state = _ShardClient(client)
        self._states[client] = state
        try:
            self._selector.register(client.sock, selectors.EVENT_READ,
                                    state)
        except (OSError, ValueError):
            self._states.pop(client, None)
            client.io_shard = None
            self.pool.client_removed(self)
            self.server.client_disconnected(client)
            return
        client._outbound.on_ready = self._make_ready_hook(state)
        # Events queued between the handshake and this registration had
        # no hook to fire; drain whatever is already waiting.
        self._flush(state)

    def _on_readable(self, state: _ShardClient) -> None:
        client = state.client
        try:
            messages = state.stream.read_available(MAX_DISPATCH_BATCH)
        except (ConnectionClosed, OSError, WireFormatError):
            self._teardown(state)
            return
        if not messages:
            return
        batch = []
        clean = True
        for message in messages:
            if message.kind is not MessageKind.REQUEST:
                clean = False   # clients only send requests
                break
            size = HEADER_SIZE + len(message.payload)
            client.bytes_in += size
            client.requests_received += 1
            client._m_bytes_in.inc(size)
            client._m_messages_in.inc()
            batch.append(message)
        if batch:
            self.pool._m_reads.inc(len(batch))
            # Sequence accounting happens per message inside the batch
            # dispatch, exactly as on the reader-thread path.
            self.server.dispatch_batch(client, batch)
        if not clean:
            self._teardown(state)

    def _flush(self, state: _ShardClient) -> None:
        """Write queued outbound messages until the socket pushes back."""
        client = state.client
        sock = client.sock
        written = 0
        while written < MAX_FLUSH_BATCH:
            if state.out_view is None:
                message = client._outbound.pop_nowait()
                if message is None:
                    break
                if message is _SHUTDOWN:
                    self._teardown(state)
                    return
                try:
                    encoded = message.encode()
                except WireFormatError:
                    self._teardown(state)
                    return
                state.out_view = memoryview(encoded)
                state.out_size = len(encoded)
                state.sent = 0
                if client._writing_since is None:
                    client._writing_since = time.monotonic()
            try:
                sent = sock.send(state.out_view[state.sent:])
            except (BlockingIOError, InterruptedError):
                self._want_write(state, True)
                return
            except OSError:
                self._teardown(state)
                return
            state.sent += sent
            if state.sent < state.out_size:
                continue
            client._writing_since = None
            client.bytes_out += state.out_size
            client.messages_sent += 1
            client._m_bytes_out.inc(state.out_size)
            client._m_messages_out.inc()
            self.pool._m_writes.inc()
            state.out_view = None
            written += 1
        if state.out_view is None and len(client._outbound) == 0:
            self._want_write(state, False)
        else:
            # More queued than one fairness slice allows: stay armed for
            # writability so the drain resumes next loop turn.
            self._want_write(state, True)

    def _want_write(self, state: _ShardClient, flag: bool) -> None:
        if state.want_write == flag:
            return
        state.want_write = flag
        events = selectors.EVENT_READ
        if flag:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(state.client.sock, events, state)
        except (KeyError, OSError, ValueError):
            pass

    def _teardown(self, state: _ShardClient) -> None:
        """Unregister, close, and run the disconnect teardown -- the
        shard-side equivalent of the reader thread's finally clause."""
        # Atomic check-and-set: stop()'s direct teardown loop can race a
        # wedged shard thread, and both must not run the teardown.
        with self._ops_lock:
            if state.gone:
                return
            state.gone = True
        client = state.client
        client._outbound.on_ready = None
        self._states.pop(client, None)
        try:
            self._selector.unregister(client.sock)
        except (KeyError, OSError, ValueError):
            pass
        # The shard owns the descriptor: externally-initiated closes
        # (stall eviction, server stop) defer here without touching the
        # socket, so the FIN/RST the peer is owed must be sent now.
        try:
            client.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            client.sock.close()
        except OSError:
            pass
        client._writing_since = None
        # Detach before the disconnect teardown so a re-entrant
        # client.close() no longer defers back to us; its own
        # shutdown/close of the already-closed socket is harmless.
        client.io_shard = None
        self.pool.client_removed(self)
        self.server.client_disconnected(client)


class IOShardPool:
    """The shard set plus balancing and observability."""

    def __init__(self, server, shards: int | None = None) -> None:
        self.server = server
        count = shards if shards is not None else default_shard_count()
        if count < 1:
            raise ValueError("io shard count must be >= 1")
        metrics = server.metrics
        self._m_shards = metrics.gauge("ioloop.shards")
        self._m_clients = metrics.gauge("ioloop.clients")
        self._m_imbalance = metrics.gauge("ioloop.imbalance")
        self._m_accepts = metrics.counter("ioloop.accepts")
        self._m_reads = metrics.counter("ioloop.reads")
        self._m_writes = metrics.counter("ioloop.writes")
        self._m_wakeups = metrics.counter("ioloop.wakeups")
        self._m_loop_lag = metrics.histogram("ioloop.loop_lag_us",
                                             edges=MICROSECOND_BUCKETS)
        self._lock = threading.Lock()
        self.shards = [IOShard(self, index) for index in range(count)]
        self._m_shards.set(count)

    def start(self) -> None:
        for shard in self.shards:
            shard.start()

    def shutdown(self) -> None:
        for shard in self.shards:
            shard.stop()

    def register(self, client) -> None:
        """Assign a handshaken connection to the least-loaded shard."""
        with self._lock:
            shard = min(self.shards, key=lambda s: s.client_count)
            shard.client_count += 1
            client.io_shard = shard
            self._update_gauges_locked()
        self._m_accepts.inc()
        shard.defer_add(client)

    def client_removed(self, shard: IOShard) -> None:
        with self._lock:
            shard.client_count = max(0, shard.client_count - 1)
            self._update_gauges_locked()

    def _update_gauges_locked(self) -> None:
        counts = [shard.client_count for shard in self.shards]
        self._m_clients.set(sum(counts))
        self._m_imbalance.set(max(counts) - min(counts))

    def client_counts(self) -> list[int]:
        """Per-shard client counts (stats snapshot / tests)."""
        with self._lock:
            return [shard.client_count for shard in self.shards]
