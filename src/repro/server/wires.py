"""Wires: typed data paths between virtual device ports.

"Wires establish the flow of data between virtual devices ...  A wire
connects a source port of a virtual device to a sink port of another
virtual device ...  The server checks that data on the wire matches the
wire type."  (paper section 5.2)
"""

from __future__ import annotations

from ..protocol.errors import bad
from ..protocol.types import ErrorCode, PortDirection, SoundType


class Wire:
    """One source-port -> sink-port connection."""

    def __init__(self, wire_id: int, source_device, source_port: int,
                 sink_device, sink_port: int,
                 wire_type: SoundType | None = None) -> None:
        source = source_device.port(source_port)
        sink = sink_device.port(sink_port)
        if source.direction is not PortDirection.SOURCE:
            raise bad(ErrorCode.BAD_MATCH,
                      "port %d of device %d is not a source"
                      % (source_port, source_device.device_id), wire_id)
        if sink.direction is not PortDirection.SINK:
            raise bad(ErrorCode.BAD_MATCH,
                      "port %d of device %d is not a sink"
                      % (sink_port, sink_device.device_id), wire_id)
        if source.sound_type != sink.sound_type:
            # The paper's example: "If one end can only produce 8-bit
            # mu-law and the other can only take ADPCM, a protocol error
            # will be generated."
            raise bad(ErrorCode.BAD_MATCH,
                      "port types differ: %s vs %s"
                      % (_type_name(source.sound_type),
                         _type_name(sink.sound_type)), wire_id)
        if wire_type is not None and wire_type != source.sound_type:
            raise bad(ErrorCode.BAD_MATCH,
                      "requested wire type does not match the ports",
                      wire_id)
        self.wire_id = wire_id
        self.source_device = source_device
        self.source_port = source_port
        self.sink_device = sink_device
        self.sink_port = sink_port
        self.wire_type = source.sound_type
        self._destroyed = False
        source_device.attach_wire(self)
        sink_device.attach_wire(self)
        self._invalidate_plan()
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("wires.created").inc()
            metrics.gauge("wires.active").inc()

    def _metrics(self):
        server = getattr(self.source_device, "server", None)
        return server.metrics if server is not None else None

    def _invalidate_plan(self) -> None:
        server = getattr(self.source_device, "server", None)
        if server is not None:
            server.invalidate_render_plan()

    def destroy(self) -> None:
        self.source_device.detach_wire(self)
        self.sink_device.detach_wire(self)
        self._invalidate_plan()
        if self._destroyed:
            return      # keep the active-wire gauge honest on re-destroys
        self._destroyed = True
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter("wires.destroyed").inc()
            metrics.gauge("wires.active").dec()

    def other_end(self, device):
        if device is self.source_device:
            return self.sink_device
        if device is self.sink_device:
            return self.source_device
        raise ValueError("device not on this wire")


def _type_name(sound_type: SoundType) -> str:
    return "%s/%d@%d" % (sound_type.encoding.name, sound_type.samplesize,
                         sound_type.samplerate)
