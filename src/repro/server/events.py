"""Event routing.

"The server generally sends an event to an application only if the
application specifically asked to be informed of that event type."
(paper section 5.7)

Clients register (resource, mask) selections via SelectEvents; the
router fans each emitted event out to every client whose selection
covers it.  Device events are matched against both the device's own id
and its root LOUD's id, so an application can select once on the LOUD it
built rather than on every constituent device.

Two concurrency layers sit on top of the fan-out (docs/PERFORMANCE.md,
"Concurrency model"):

* **worker deferral** -- render-pool workers must not interleave
  emissions nondeterministically, so while a worker renders a plan row
  the router's thread-local deferral buffer captures its ``emit*``
  calls; the pool replays each row's buffer on the hub thread in
  plan-row order.  The edge-trigger sets (``_hungry_streams``,
  ``_announced_streams``) are therefore only ever mutated with the
  stream lock held, and deferred calls re-enter the normal path on
  replay.
* **tick batching** -- ``begin_tick_batch``/``flush_tick_batch`` bracket
  the block cycle; events emitted inside accumulate per client and are
  flushed as one outbound-queue append and one writer wakeup per
  client, instead of one lock round-trip per event.
"""

from __future__ import annotations

import threading

from ..protocol import events as ev
from ..protocol.attributes import AttributeList
from ..protocol.events import Event
from ..protocol.types import EVENT_MASK_FOR_CODE, EventCode

#: Per-thread deferral buffer armed by render-pool workers.
_deferral = threading.local()


class EventRouter:
    """Fans server events out to selecting clients."""

    def __init__(self, server) -> None:
        self.server = server
        self._hungry_streams: set[int] = set()
        self._announced_streams: set[int] = set()
        self._stream_lock = threading.Lock()
        #: client -> [Event], while a tick batch is open; else None.
        self._tick_batch: dict | None = None
        metrics = server.metrics
        self._m_emitted = {
            code: metrics.counter("events.%s" % code.name)
            for code in EventCode
        }
        self._m_emitted_total = metrics.counter("events.total")
        self._m_delivered = metrics.counter("events.delivered")
        self._m_deferred = metrics.counter("events.deferred")
        self._m_coalesced = metrics.counter("events.coalesced")
        self._m_batch_flushes = metrics.counter("events.batch_flushes")

    # -- worker deferral ------------------------------------------------------

    def start_deferred(self) -> list:
        """Arm deferral on the calling thread; returns the buffer."""
        buffer: list = []
        _deferral.buffer = buffer
        return buffer

    def stop_deferred(self) -> None:
        _deferral.buffer = None

    def _defer(self, fn, fn_args: tuple) -> bool:
        """Record the call for ordered replay if this thread defers."""
        buffer = getattr(_deferral, "buffer", None)
        if buffer is None:
            return False
        buffer.append((fn, fn_args))
        self._m_deferred.inc()
        return True

    # -- tick batching --------------------------------------------------------

    def begin_tick_batch(self) -> None:
        """Start coalescing emissions (hub thread, under the lock)."""
        self._tick_batch = {}

    def flush_tick_batch(self) -> None:
        """Deliver each client's batched events in one writer wakeup."""
        batch, self._tick_batch = self._tick_batch, None
        if not batch:
            return
        for client, batched in batch.items():
            client.send_events(batched)
        self._m_batch_flushes.inc()

    def _deliver(self, client, event: Event) -> None:
        self._m_delivered.inc()
        batch = self._tick_batch
        if batch is not None:
            batch.setdefault(client, []).append(event)
            self._m_coalesced.inc()
        else:
            client.send_event(event)

    # -- emission -------------------------------------------------------------

    def emit(self, code: EventCode, resource: int, detail: int = 0,
             sample_time: int = 0, args: AttributeList | None = None,
             also_match: tuple[int, ...] = (),
             only_client=None) -> None:
        """Deliver one event to every interested client.

        ``also_match`` lists additional resource ids whose selections
        should receive the event (e.g. the root LOUD of a device event);
        the event itself always names ``resource``.  With ``only_client``
        the event is solicited out-of-band (the audio manager's
        SetRedirect), so it is delivered without a selection check.
        """
        if self._defer(self.emit, (code, resource, detail, sample_time,
                                   args, also_match, only_client)):
            return
        self._m_emitted[code].inc()
        self._m_emitted_total.inc()
        needed = EVENT_MASK_FOR_CODE[code]
        match_ids = (resource,) + also_match
        for client in self.server.clients_snapshot():
            if only_client is not None and client is not only_client:
                continue
            if only_client is not None or any(
                    client.selection_for(match_id) & needed
                    for match_id in match_ids):
                self._deliver(client, Event(
                    code, resource=resource, detail=detail,
                    sample_time=sample_time,
                    args=args or AttributeList(),
                    sequence=client.sequence & 0xFFFF))

    def emit_device(self, vdevice, code: EventCode, detail: int = 0,
                    sample_time: int = 0,
                    args: AttributeList | None = None) -> None:
        """Emit a device event, matching the device and its root LOUD."""
        root_id = vdevice.loud.root().loud_id if vdevice.loud else 0
        self.emit(code, vdevice.device_id, detail=detail,
                  sample_time=sample_time, args=args,
                  also_match=(root_id,))

    def emit_stream_hungry(self, sound) -> None:
        """DATA_REQUEST flow control, edge-triggered per low-water dip."""
        if self._defer(self.emit_stream_hungry, (sound,)):
            return
        with self._stream_lock:
            if sound.sound_id in self._hungry_streams:
                return
            self._hungry_streams.add(sound.sound_id)
        self.emit(EventCode.DATA_REQUEST, sound.sound_id,
                  sample_time=self.server.hub.sample_time,
                  args=AttributeList({
                      ev.ARG_FRAMES_WANTED: int(sound.stream_space),
                  }))

    def stream_fed(self, sound) -> None:
        """The client wrote data: re-arm the low-water trigger."""
        if not sound.stream_hungry:
            with self._stream_lock:
                self._hungry_streams.discard(sound.sound_id)

    def emit_stream_available(self, sound) -> None:
        """DATA_AVAILABLE: recorded data ready, edge-triggered per drain."""
        if self._defer(self.emit_stream_available, (sound,)):
            return
        with self._stream_lock:
            if sound.sound_id in self._announced_streams:
                return
            self._announced_streams.add(sound.sound_id)
        byte_count = sound.sound_type.frames_to_bytes(sound.frame_length)
        self.emit(EventCode.DATA_AVAILABLE, sound.sound_id,
                  sample_time=self.server.hub.sample_time,
                  args=AttributeList({
                      ev.ARG_BYTES_AVAILABLE: int(byte_count),
                  }))

    def stream_drained(self, sound) -> None:
        """The client read stream data: re-arm the available trigger."""
        with self._stream_lock:
            self._announced_streams.discard(sound.sound_id)
