"""Event routing.

"The server generally sends an event to an application only if the
application specifically asked to be informed of that event type."
(paper section 5.7)

Clients register (resource, mask) selections via SelectEvents; the
router fans each emitted event out to every client whose selection
covers it.  Device events are matched against both the device's own id
and its root LOUD's id, so an application can select once on the LOUD it
built rather than on every constituent device.
"""

from __future__ import annotations

from ..protocol import events as ev
from ..protocol.attributes import AttributeList
from ..protocol.events import Event
from ..protocol.types import EVENT_MASK_FOR_CODE, EventCode


class EventRouter:
    """Fans server events out to selecting clients."""

    def __init__(self, server) -> None:
        self.server = server
        self._hungry_streams: set[int] = set()
        self._announced_streams: set[int] = set()
        metrics = server.metrics
        self._m_emitted = {
            code: metrics.counter("events.%s" % code.name)
            for code in EventCode
        }
        self._m_emitted_total = metrics.counter("events.total")
        self._m_delivered = metrics.counter("events.delivered")

    def emit(self, code: EventCode, resource: int, detail: int = 0,
             sample_time: int = 0, args: AttributeList | None = None,
             also_match: tuple[int, ...] = (),
             only_client=None) -> None:
        """Deliver one event to every interested client.

        ``also_match`` lists additional resource ids whose selections
        should receive the event (e.g. the root LOUD of a device event);
        the event itself always names ``resource``.  With ``only_client``
        the event is solicited out-of-band (the audio manager's
        SetRedirect), so it is delivered without a selection check.
        """
        self._m_emitted[code].inc()
        self._m_emitted_total.inc()
        needed = EVENT_MASK_FOR_CODE[code]
        match_ids = (resource,) + also_match
        for client in self.server.clients_snapshot():
            if only_client is not None and client is not only_client:
                continue
            if only_client is not None or any(
                    client.selection_for(match_id) & needed
                    for match_id in match_ids):
                self._m_delivered.inc()
                client.send_event(Event(
                    code, resource=resource, detail=detail,
                    sample_time=sample_time,
                    args=args or AttributeList(),
                    sequence=client.sequence & 0xFFFF))

    def emit_device(self, vdevice, code: EventCode, detail: int = 0,
                    sample_time: int = 0,
                    args: AttributeList | None = None) -> None:
        """Emit a device event, matching the device and its root LOUD."""
        root_id = vdevice.loud.root().loud_id if vdevice.loud else 0
        self.emit(code, vdevice.device_id, detail=detail,
                  sample_time=sample_time, args=args,
                  also_match=(root_id,))

    def emit_stream_hungry(self, sound) -> None:
        """DATA_REQUEST flow control, edge-triggered per low-water dip."""
        if sound.sound_id in self._hungry_streams:
            return
        self._hungry_streams.add(sound.sound_id)
        self.emit(EventCode.DATA_REQUEST, sound.sound_id,
                  sample_time=self.server.hub.sample_time,
                  args=AttributeList({
                      ev.ARG_FRAMES_WANTED: int(sound.stream_space),
                  }))

    def stream_fed(self, sound) -> None:
        """The client wrote data: re-arm the low-water trigger."""
        if not sound.stream_hungry:
            self._hungry_streams.discard(sound.sound_id)

    def emit_stream_available(self, sound) -> None:
        """DATA_AVAILABLE: recorded data ready, edge-triggered per drain."""
        if sound.sound_id in self._announced_streams:
            return
        self._announced_streams.add(sound.sound_id)
        byte_count = sound.sound_type.frames_to_bytes(sound.frame_length)
        self.emit(EventCode.DATA_AVAILABLE, sound.sound_id,
                  sample_time=self.server.hub.sample_time,
                  args=AttributeList({
                      ev.ARG_BYTES_AVAILABLE: int(byte_count),
                  }))

    def stream_drained(self, sound) -> None:
        """The client read stream data: re-arm the available trigger."""
        self._announced_streams.discard(sound.sound_id)
