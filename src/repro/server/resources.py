"""Resource id management.

Like X, resource ids (LOUDs, virtual devices, wires, sounds) are
allocated by the *client* out of an id range granted at connection setup;
the server validates ownership and uniqueness.  Ids below
``FIRST_CLIENT_ID`` belong to the server itself -- the device LOUD and
the physical devices it contains live there.
"""

from __future__ import annotations

from ..protocol.errors import bad
from ..protocol.setup import ID_RANGE_SIZE
from ..protocol.types import ErrorCode

#: Server-owned ids occupy [1, FIRST_CLIENT_ID); client ranges follow.
FIRST_CLIENT_ID = ID_RANGE_SIZE

#: The device LOUD always has this well-known id.
DEVICE_LOUD_ID = 1


class ResourceTable:
    """All live resources, by id, with client-ownership bookkeeping."""

    def __init__(self) -> None:
        self._resources: dict[int, object] = {}
        self._owner: dict[int, int] = {}    # resource id -> client id base
        self._next_client_base = FIRST_CLIENT_ID
        self._released: set[int] = set()    # granted but returned unused

    def grant_range(self) -> tuple[int, int]:
        """Allocate an (id_base, id_mask) range for a new client."""
        if self._released:
            base = min(self._released)
            self._released.remove(base)
            return base, ID_RANGE_SIZE - 1
        base = self._next_client_base
        self._next_client_base += ID_RANGE_SIZE
        return base, ID_RANGE_SIZE - 1

    def release_range(self, base: int) -> None:
        """Return an *unused* range whose client never materialized.

        Only safe when no resource was ever created in the range (a
        setup handshake that failed after the grant); a released base
        goes back into the pool and stops being resumable.
        """
        if self.was_granted(base) and not self.range_in_use(base):
            self._released.add(base)

    def was_granted(self, base: int) -> bool:
        """Whether ``base`` is a range this table handed out earlier.

        Ranges are never re-granted to fresh clients, so a previously
        granted base can safely be *resumed* by a reconnecting client
        once its old incarnation's resources are gone.  Released ranges
        are excluded: they may be re-granted and must not be resumed.
        """
        return (base >= FIRST_CLIENT_ID
                and base < self._next_client_base
                and (base - FIRST_CLIENT_ID) % ID_RANGE_SIZE == 0
                and base not in self._released)

    def range_in_use(self, base: int) -> bool:
        """Whether any live resource still belongs to ``base``."""
        return any(owner == base for owner in self._owner.values())

    def add_server_resource(self, resource_id: int, resource: object) -> None:
        """Register a server-owned resource (device LOUD entries)."""
        if resource_id >= FIRST_CLIENT_ID:
            raise ValueError("server resources must use low ids")
        self._resources[resource_id] = resource

    def add(self, client_base: int, resource_id: int,
            resource: object) -> None:
        """Register a client-created resource, validating the id."""
        if not client_base <= resource_id < client_base + ID_RANGE_SIZE:
            raise bad(ErrorCode.BAD_ID_CHOICE,
                      "id outside the client's range", resource_id)
        if resource_id in self._resources:
            raise bad(ErrorCode.BAD_ID_CHOICE, "id already in use",
                      resource_id)
        self._resources[resource_id] = resource
        self._owner[resource_id] = client_base

    def remove(self, resource_id: int) -> None:
        self._resources.pop(resource_id, None)
        self._owner.pop(resource_id, None)

    def get(self, resource_id: int, expected_type: type | None = None,
            error_code: ErrorCode = ErrorCode.BAD_VALUE) -> object:
        """Look up a resource, raising the class-appropriate error."""
        resource = self._resources.get(resource_id)
        if resource is None or (expected_type is not None
                                and not isinstance(resource, expected_type)):
            raise bad(error_code, "no such resource", resource_id)
        return resource

    def maybe_get(self, resource_id: int) -> object | None:
        return self._resources.get(resource_id)

    def all_items(self) -> list[tuple[int, object]]:
        """Every (id, resource) pair (query-snapshot construction)."""
        return list(self._resources.items())

    def owned_by(self, client_base: int) -> list[int]:
        """All resource ids a client owns (for disconnect cleanup)."""
        return [resource_id for resource_id, owner in self._owner.items()
                if owner == client_base]

    def __contains__(self, resource_id: int) -> bool:
        return resource_id in self._resources

    def __len__(self) -> int:
        return len(self._resources)
