"""The audio server.

"For each workstation, there is a controlling server.  The server
implements the requests defined in the protocol and executes on the
workstation where the audio hardware is located, providing low-level
functions to access that hardware and coordination between applications.
Clients and a server communicate over a reliable full duplex, 8-bit byte
stream ...  The audio server can service multiple client connections
simultaneously."  (paper section 4.1)

Threads (paper section 6.1 mapped onto our design; see DESIGN.md §4):

* the **connection manager** accepts sockets and builds client containers;
* **per-client reader/writer threads** parse requests and drain events
  (the default ``threads`` I/O backend), or a small pool of
  **selector-based I/O shards** does both non-blockingly for all
  clients at once (``--io-backend shards``; ``ioloop.py``);
* the **audio hub thread** is the device layer; the server registers one
  tick callback that runs the command-queue conductors and the wire-graph
  rendering engine inside the hub's block cycle;
* the **render pool** workers shard the block cycle's render plan rows
  across cores (``render_pool.py``), merging deterministically.

The re-entrant *topology* lock serializes mutating dispatch against the
block cycle; pure and snapshot-served queries bypass it entirely
(``dispatch.py``), and each reader thread drains its pending requests
into one batched lock acquisition.  Event delivery is queue-based so no
client can stall audio.  See docs/PERFORMANCE.md ("Concurrency model")
for the full lock hierarchy and REPRO_LOCK_DEBUG.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time

from ..dsp import encodings
from ..dsp.tones import beep, busy_tone, dial_tone, ringback_tone
from ..hardware.config import HardwareConfig
from ..hardware.hub import AudioHub
from ..obs import MICROSECOND_BUCKETS, MetricsRegistry
from ..protocol.setup import ID_RANGE_SIZE, SetupReply, SetupRequest
from ..protocol.types import MULAW_8K, PROTOCOL_MAJOR
from ..obs import NULL_REGISTRY
from ..protocol.wire import (
    ConnectionClosed,
    Message,
    WireFormatError,
    set_nodelay,
)
from ..trunk import TrunkGateway
from .clients import DEFAULT_OUTBOUND_BOUND, ClientConnection
from .devices import build_wrappers
from .dispatch import Dispatcher
from .events import EventRouter
from .locks import RANK_CLIENTS, RANK_TOPOLOGY, InstrumentedRLock
from .loud import Loud
from .render_pool import RenderPool
from .resources import DEVICE_LOUD_ID, ResourceTable
from .snapshot import QuerySnapshot, build_query_snapshot
from .sounds import Catalogue, DecodeCache
from .stack import ActiveStack

log = logging.getLogger(__name__)


class AudioServer:
    """The whole server: hub, resources, stack, dispatch, connections."""

    def __init__(self, config: HardwareConfig | None = None,
                 hub: AudioHub | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 realtime: bool = False,
                 catalogue_dir: str | None = None,
                 metrics: MetricsRegistry | None = None,
                 outbound_bound: int = DEFAULT_OUTBOUND_BOUND,
                 stall_deadline: float = 5.0,
                 render_workers: int | None = None,
                 render_min_rows: int | None = None,
                 render_backend: str | None = None,
                 io_backend: str | None = None,
                 io_shards: int | None = None,
                 trunk_listen: tuple[str, int] | None = None,
                 trunk_routes: list[tuple[str, str, int]] | None = None,
                 trunk_name: str = "",
                 mesh_registry: tuple[str, int] | None = None,
                 mesh_join: tuple[str, int] | None = None,
                 mesh_prefixes: list[str] | None = None,
                 mesh_neighbors: list[str] | None = None) -> None:
        self.hub = hub or AudioHub(config, realtime=realtime)
        #: Graceful-degradation knobs (docs/RELIABILITY.md): per-client
        #: outbound queue bound, and how long one socket write may block
        #: the writer thread before the consumer is evicted.
        self.outbound_bound = outbound_bound
        self.stall_deadline = stall_deadline
        self._last_stall_sweep = 0.0
        # The observability plane.  REPRO_METRICS=0 turns instrumentation
        # into no-ops machine-wide (for measuring the metering itself).
        if metrics is None:
            metrics = MetricsRegistry(
                enabled=os.environ.get("REPRO_METRICS", "1") != "0")
        self.metrics = metrics
        #: The topology lock: serializes mutating dispatch, the block
        #: cycle and client teardown.  Pure/snapshot queries never take
        #: it.  Instrumented (lock.wait_us / lock.hold_us); rank order
        #: and hold times are asserted with REPRO_LOCK_DEBUG=1.
        self.lock = InstrumentedRLock("topology", RANK_TOPOLOGY,
                                      metrics=metrics)
        self._started_at = time.monotonic()
        self._m_blocks = metrics.counter("audio.blocks")
        self._m_frames = metrics.counter("audio.frames")
        self._m_active_louds = metrics.gauge("audio.active_louds")
        self._m_plan_rebuilds = metrics.counter("renderplan.rebuilds")
        self._m_plan_invalidations = metrics.counter(
            "renderplan.invalidations")
        self._m_plan_ticks = metrics.counter("renderplan.ticks")
        self._m_clients = metrics.gauge("clients.connected")
        self._m_accepted = metrics.counter("clients.accepted")
        self._m_setup_refused = metrics.counter("clients.setup_refused")
        self._m_resumed = metrics.counter("clients.resumed")
        self._m_evicted_slow = metrics.counter("clients.evicted_slow")
        self._m_tick_duration = metrics.histogram(
            "tick.duration_us", edges=MICROSECOND_BUCKETS)
        # duration_us ~= render_us + flush_us: the render component is
        # everything under the lock up to the event flush, so backend
        # comparisons attribute time to rendering, not client fan-out.
        self._m_tick_render = metrics.histogram(
            "tick.render_us", edges=MICROSECOND_BUCKETS)
        self._m_tick_flush = metrics.histogram(
            "tick.flush_us", edges=MICROSECOND_BUCKETS)
        self._m_snapshot_rebuilds = metrics.counter(
            "querysnapshot.rebuilds")
        self.resources = ResourceTable()
        #: Precompiled render plan: one (queue, devices) row per active
        #: LOUD, flattened once and reused every block until a topology
        #: mutation invalidates it.  None = rebuild on next tick.
        self._render_plan: list[tuple] | None = None
        #: Monotonic topology version; bumped by plan invalidation,
        #: every locked dispatch batch and client teardown.  Keys the
        #: lock-free query snapshot.
        self._topology_version = 0
        self._query_snapshot: QuerySnapshot | None = None
        #: Selectable render backend (docs/PERFORMANCE.md): "threads"
        #: (the PR 4 sharded pool), "procs" (process sharding over
        #: shared memory), or "serial" (no pool at all).  Whatever the
        #: backend, plans below the row threshold (or a <2-worker pool)
        #: render serially in _on_tick, which stays the byte-identical
        #: oracle.
        backend = (render_backend
                   or os.environ.get("REPRO_RENDER_BACKEND", "")
                   or "threads").strip().lower()
        if backend not in ("serial", "threads", "procs"):
            raise ValueError("unknown render backend %r "
                             "(serial, threads or procs)" % backend)
        self.render_backend = backend
        if backend == "procs":
            from .render_proc import ProcessRenderPool

            self.render_pool = ProcessRenderPool(
                self, workers=render_workers, min_rows=render_min_rows)
        else:
            self.render_pool = RenderPool(
                self, workers=0 if backend == "serial" else render_workers,
                min_rows=render_min_rows)
        #: Selectable connection I/O backend (docs/PERFORMANCE.md,
        #: "Connection scaling"): "threads" keeps the per-client
        #: reader/writer pumps (the oracle), "shards" hands every
        #: post-handshake socket to a small pool of selector loops
        #: (``ioloop.py``) so concurrency is no longer bounded by the
        #: thread scheduler.
        backend = (io_backend
                   or os.environ.get("REPRO_IO_BACKEND", "")
                   or "threads").strip().lower()
        if backend not in ("threads", "shards"):
            raise ValueError("unknown io backend %r (threads or shards)"
                             % backend)
        self.io_backend = backend
        if backend == "shards":
            from .ioloop import IOShardPool

            self.ioloop: IOShardPool | None = IOShardPool(
                self, shards=io_shards)
        else:
            self.ioloop = None
        #: Shared LRU of decoded sounds; dispatch attaches every sound a
        #: client creates or loads, so repeat plays skip the codec.
        self.decode_cache = DecodeCache(metrics=metrics)
        self.events = EventRouter(self)
        self.stack = ActiveStack(self)
        self.dispatcher = Dispatcher(self)
        self.manager: ClientConnection | None = None
        self._clients: list[ClientConnection] = []
        self._clients_lock = InstrumentedRLock("clients", RANK_CLIENTS,
                                               metrics=metrics)
        self._catalogues: dict[str, Catalogue] = {}
        self.host = host
        self.port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._build_device_loud()
        self._build_catalogues(catalogue_dir)
        # Telephony observability: the exchange is built before any
        # server exists (often by the hub), so the first server that
        # wraps it lends it the real registry.
        exchange = self.hub.exchange
        if exchange.metrics is NULL_REGISTRY:
            exchange.attach_metrics(metrics)
        #: The trunk gateway (docs/TELEPHONY.md): federates this
        #: server's exchange with remote peers.  Built only when routes
        #: or a trunk listener are configured; its tick runs as an
        #: exchange party inside the hub's block cycle.
        self.trunk: TrunkGateway | None = None
        mesh = mesh_registry is not None or mesh_join is not None
        if trunk_listen is not None or trunk_routes or mesh:
            self.trunk = TrunkGateway(
                exchange, name=trunk_name or ("%s:%d" % (host, port)),
                metrics=metrics)
            if trunk_listen is not None:
                self.trunk.listen(*trunk_listen)
            for prefix, route_host, route_port in (trunk_routes or []):
                self.trunk.add_route(prefix, route_host, route_port)
            if mesh:
                # Join (and optionally serve) the dynamic routing mesh;
                # static --trunk-route entries stay as overrides.
                self.trunk.enable_mesh(
                    registry=mesh_join,
                    serve_registry=mesh_registry,
                    prefixes=tuple(mesh_prefixes or ()),
                    neighbors=(frozenset(mesh_neighbors)
                               if mesh_neighbors else None))
        # The whole hub block cycle runs under the server lock so that
        # exchange and device callbacks are serialized against dispatch.
        self.hub.external_lock = self.lock
        self.hub.add_tick_callback(self._on_tick)

    # -- construction ---------------------------------------------------------

    def _build_device_loud(self) -> None:
        """Register the device LOUD and every physical device."""
        device_loud = Loud(DEVICE_LOUD_ID, self)
        self.resources.add_server_resource(DEVICE_LOUD_ID, device_loud)
        self.physicals = build_wrappers(self)
        for wrapper in self.physicals:
            self.resources.add_server_resource(wrapper.device_id, wrapper)

    def _build_catalogues(self, catalogue_dir: str | None) -> None:
        """The built-in 'system' catalogue plus an optional directory."""
        rate = self.hub.sample_rate
        system = Catalogue("system")
        system.add_generated(
            "beep", encodings.encode(beep(rate), MULAW_8K), MULAW_8K)
        system.add_generated(
            "dial-tone", encodings.encode(dial_tone(1.0, rate), MULAW_8K),
            MULAW_8K)
        system.add_generated(
            "ringback", encodings.encode(ringback_tone(6.0, rate), MULAW_8K),
            MULAW_8K)
        system.add_generated(
            "busy", encodings.encode(busy_tone(1.0, rate), MULAW_8K),
            MULAW_8K)
        self._catalogues["system"] = system
        self._catalogues[""] = system   # the default catalogue
        if catalogue_dir is not None:
            self._catalogues["local"] = Catalogue("local", catalogue_dir)

    def catalogue(self, name: str) -> Catalogue:
        from ..protocol.errors import bad
        from ..protocol.types import ErrorCode

        try:
            return self._catalogues[name]
        except KeyError:
            raise bad(ErrorCode.BAD_NAME,
                      "no catalogue %r" % name) from None

    # -- the block cycle (runs in the hub thread, under the server lock) ------

    def invalidate_render_plan(self) -> None:
        """Topology changed: the next tick re-derives the flat plan.

        Called from every map/unmap/restack/activation change and every
        device, wire or LOUD mutation; the call is two attribute writes,
        so over-invalidating is always safe.
        """
        self._render_plan = None
        self._topology_version += 1
        self._m_plan_invalidations.inc()

    def _build_render_plan(self) -> list[tuple]:
        plan = self.stack.render_rows()
        self._render_plan = plan
        self._m_plan_rebuilds.inc()
        return plan

    def query_snapshot(self) -> QuerySnapshot:
        """The current immutable topology snapshot, rebuilt on demand.

        The fast path is two attribute reads and an int compare -- no
        lock.  On a version miss the snapshot is rebuilt under the
        topology lock; one brief acquisition amortized across every
        query until the next mutation.
        """
        snapshot = self._query_snapshot
        version = self._topology_version
        if snapshot is not None and snapshot.version == version:
            return snapshot
        with self.lock:
            snapshot = self._query_snapshot
            version = self._topology_version
            if snapshot is not None and snapshot.version == version:
                return snapshot
            snapshot = build_query_snapshot(self, version)
            self._query_snapshot = snapshot
            self._m_snapshot_rebuilds.inc()
            return snapshot

    def _on_tick(self, sample_time: int, frames: int) -> None:
        started = time.perf_counter()
        with self.lock:
            plan = self._render_plan
            if plan is None:
                plan = self._build_render_plan()
            self._m_blocks.inc()
            self._m_frames.inc(frames)
            self._m_active_louds.set(len(plan))
            self._m_plan_ticks.inc()
            # Same-tick events coalesce into one writer wakeup per
            # client; the flush preserves emission order.
            self.events.begin_tick_batch()
            try:
                for queue, _devices in plan:
                    queue.tick_pre(sample_time, frames)
                if not self.render_pool.render(plan, sample_time, frames):
                    # Serial path: the oracle the pool must match
                    # byte-for-byte, and the fallback for small plans.
                    for _queue, devices in plan:
                        for device in devices:
                            device.begin_tick(sample_time, frames)
                    for _queue, devices in plan:
                        for device in devices:
                            device.consume(sample_time, frames)
                for queue, devices in plan:
                    queue.tick_post(sample_time, frames, devices)
            finally:
                rendered = time.perf_counter()
                self.events.flush_tick_batch()
        ended = time.perf_counter()
        self._m_tick_render.observe((rendered - started) * 1e6)
        self._m_tick_flush.observe((ended - rendered) * 1e6)
        self._m_tick_duration.observe((ended - started) * 1e6)
        self._sweep_stalled_clients()

    def _sweep_stalled_clients(self) -> None:
        """Evict consumers whose sockets have wedged the writer thread.

        Runs off the block cycle but rate-limited to a few times per
        second; a stalled client is one whose writer thread has been
        stuck inside a single socket write for longer than
        :attr:`stall_deadline` (its TCP buffers are full and it is not
        reading), at which point dropping events is no longer enough.
        """
        now = time.monotonic()
        if now - self._last_stall_sweep < min(0.25, self.stall_deadline / 4):
            return
        self._last_stall_sweep = now
        for client in self.clients_snapshot():
            if client.evicted or client.closed:
                continue
            if client.stalled_for(now) > self.stall_deadline:
                client.evicted = True
                self._m_evicted_slow.inc()
                log.warning(
                    "evicting stalled client %r: writer blocked %.1fs, "
                    "queue depth %d, %d events already shed", client.name,
                    client.stalled_for(now), client.queue_depth,
                    client.dropped_events)
                client.close()

    # -- lifecycle ------------------------------------------------------------

    def start(self, start_hub: bool = True) -> None:
        """Start the hub and the connection manager.

        ``start_hub=False`` leaves the hub thread stopped so a test or
        benchmark can drive block time deterministically with
        ``server.hub.step(n)`` from sample time zero.
        """
        if self._running:
            return
        self._running = True
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self.port))
        self.port = self._listener.getsockname()[1]
        # A deep backlog: the C10k soak ramps hundreds of connects in
        # bursts, and a 32-entry queue would silently reset the overflow.
        self._listener.listen(1024)
        if self.ioloop is not None:
            self.ioloop.start()
        if self.trunk is not None:
            self.trunk.start()
        # Process workers spawn in the background; ticks render serially
        # until they report ready (a no-op for the thread backend).
        self.render_pool.start()
        if start_hub:
            self.hub.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="connection-manager", daemon=True)
        self._accept_thread.start()

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            # shutdown() wakes a thread blocked in accept(); close()
            # alone does not on Linux.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        for client in self.clients_snapshot():
            client.close()
        if self.ioloop is not None:
            # Drains the deferred closes above, then force-tears-down
            # whatever is left before the shard threads exit.
            self.ioloop.shutdown()
        if self.trunk is not None:
            self.trunk.stop()
        self.hub.stop()
        self.render_pool.shutdown()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> "AudioServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection management ------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _address = self._listener.accept()
            except OSError:
                break
            threading.Thread(target=self._setup_client, args=(sock,),
                             daemon=True).start()

    def _refuse_setup(self, sock: socket.socket, reason: str) -> None:
        """Refuse a handshake; the peer may already be gone."""
        self._m_setup_refused.inc()
        try:
            sock.sendall(SetupReply(False, reason=reason).encode())
        except OSError:
            pass    # refused *and* unreachable: nothing left to say
        try:
            sock.close()
        except OSError:
            pass

    def _setup_client(self, sock: socket.socket) -> None:
        set_nodelay(sock)
        try:
            setup = SetupRequest.read_from(sock)
        except (WireFormatError, ConnectionClosed, OSError,
                UnicodeDecodeError) as exc:
            # A stream that does not open with a well-formed setup request
            # is refused -- but only for the failures setup parsing can
            # actually produce; anything else is a server bug and must
            # propagate.
            self._m_setup_refused.inc()
            log.debug("refused connection setup: %s", exc)
            sock.close()
            return
        if setup.major != PROTOCOL_MAJOR:
            log.debug("refused client %r: protocol version %d",
                      setup.client_name, setup.major)
            self._refuse_setup(sock, "unsupported protocol version")
            return
        granted_fresh = False
        client = None
        with self.lock:
            if setup.resume_base:
                # A reconnecting client asks for its old range back so
                # its resource ids stay valid across the drop.  Resume is
                # only safe once the old incarnation is fully gone --
                # otherwise the journal replay would collide with its
                # leftovers; the client backs off and retries.  The
                # refusal itself is sent after the lock is released: no
                # socket I/O under the topology lock.
                resumable = (
                    self.resources.was_granted(setup.resume_base)
                    and not self.resources.range_in_use(setup.resume_base)
                    and all(peer.id_base != setup.resume_base
                            for peer in self.clients_snapshot()))
                if resumable:
                    id_base, id_mask = setup.resume_base, ID_RANGE_SIZE - 1
                    self._m_resumed.inc()
            else:
                id_base, id_mask = self.resources.grant_range()
                granted_fresh = True
                resumable = True
            if resumable:
                client = ClientConnection(self, sock, setup.client_name,
                                          id_base)
                with self._clients_lock:
                    self._clients.append(client)
        if client is None:
            log.debug("refused resume of id base %d for client %r",
                      setup.resume_base, setup.client_name)
            self._refuse_setup(sock, "resume not ready")
            return
        try:
            sock.sendall(SetupReply(
                True, id_base=id_base, id_mask=id_mask,
                vendor="repro desktop audio").encode())
        except OSError as exc:
            # The peer dropped mid-handshake: roll the grant back so the
            # id range is not leaked, and count it as a refusal.
            log.debug("client %r vanished during setup: %s",
                      setup.client_name, exc)
            with self.lock:
                with self._clients_lock:
                    if client in self._clients:
                        self._clients.remove(client)
                if granted_fresh:
                    self.resources.release_range(id_base)
            self._m_setup_refused.inc()
            client.close()
            return
        self._m_accepted.inc()
        self._m_clients.set(len(self.clients_snapshot()))
        client.start()

    def clients_snapshot(self) -> list[ClientConnection]:
        with self._clients_lock:
            return list(self._clients)

    def dispatch_request(self, client: ClientConnection,
                         message: Message) -> None:
        """Dispatch one already-sequenced request (tests, tooling)."""
        if not self.dispatcher.needs_lock(message):
            self.dispatcher.handle_unlocked(client, message)
            return
        with self.lock:
            self.dispatcher.handle(client, message)
            self._topology_version += 1

    def dispatch_batch(self, client: ClientConnection,
                       messages: list[Message]) -> None:
        """Dispatch a reader's drained requests, batching the lock.

        Consecutive lock-needing requests run under *one* topology-lock
        acquisition; pure and snapshot requests in between run with no
        lock at all.  Per-client order is preserved (one reader thread
        per client), and the 16-bit sequence advances per message so
        replies and errors stay in lockstep with the client's journal.
        """
        self.dispatcher.observe_batch(len(messages))
        index, total = 0, len(messages)
        while index < total:
            if not self.dispatcher.needs_lock(messages[index]):
                client.sequence = (client.sequence + 1) & 0xFFFF
                self.dispatcher.handle_unlocked(client, messages[index])
                index += 1
                continue
            with self.lock:
                while (index < total
                       and self.dispatcher.needs_lock(messages[index])):
                    client.sequence = (client.sequence + 1) & 0xFFFF
                    self.dispatcher.handle(client, messages[index])
                    index += 1
                # One bump for the whole locked run: queries issued
                # after it see every mutation the run made.
                self._topology_version += 1

    def client_disconnected(self, client: ClientConnection) -> None:
        """Tear down everything a departed client owned."""
        with self.lock:
            if self.manager is client:
                self.manager = None
            for resource_id in self.resources.owned_by(client.id_base):
                resource = self.resources.maybe_get(resource_id)
                if isinstance(resource, Loud):
                    if resource.is_root() and resource.mapped:
                        self.stack.unmap_loud(resource)
            # Destroy root LOUDs (which takes devices and wires with
            # them), then everything left (sounds, stray wires).
            for resource_id in self.resources.owned_by(client.id_base):
                resource = self.resources.maybe_get(resource_id)
                if isinstance(resource, Loud) and resource.is_root():
                    resource.destroy()
            for resource_id in self.resources.owned_by(client.id_base):
                self.resources.remove(resource_id)
            self._topology_version += 1
        with self._clients_lock:
            if client in self._clients:
                self._clients.remove(client)
        self._m_clients.set(len(self.clients_snapshot()))
        client.close()

    # -- observability --------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """The whole observability picture as one json-able dict.

        The same structure backs the GET_SERVER_STATS reply, the
        SIGUSR1/shutdown dump, and the benchmark harness's per-run
        collection -- one snapshot, three consumers.
        """
        snapshot = self.metrics.snapshot()
        clients = self.clients_snapshot()
        snapshot["server"] = {
            "uptime_seconds": time.monotonic() - self._started_at,
            "sample_time": self.hub.sample_time,
            "sample_rate": self.hub.sample_rate,
            "block_frames": self.hub.block_frames,
            "clients_connected": len(clients),
            "render_backend": self.render_backend,
            "io_backend": self.io_backend,
        }
        if self.ioloop is not None:
            snapshot["server"]["io_shard_clients"] = (
                self.ioloop.client_counts())
        snapshot["clients"] = [client.connection_stats()
                               for client in clients]
        if self.trunk is not None:
            snapshot["trunk"] = {
                "listen_port": self.trunk.port,
                "live_links": self.trunk.live_link_count(),
                "routes": [
                    {"prefix": route.prefix,
                     "endpoint": "%s:%d" % (route.host, route.port),
                     "connected": route.live_link() is not None}
                    for route in self.trunk.routes],
                "buffered_audio_samples":
                    self.trunk.buffered_audio_samples(),
                "mesh": self.trunk.mesh_snapshot(),
            }
        return snapshot
