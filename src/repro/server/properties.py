"""Properties: (name, value, type) triples on LOUDs and sounds.

"Properties can define any arbitrary information and can be associated
with any LOUD or sound data.  Properties can be used to communicate
information between applications." (paper section 5.8)

The audio manager reads properties such as DOMAIN to learn application
preferences; PROPERTY_NOTIFY events tell interested clients when one
changes.
"""

from __future__ import annotations

from ..protocol.errors import bad
from ..protocol.types import ErrorCode

#: Detail codes on PROPERTY_NOTIFY events.
PROPERTY_CHANGED = 0
PROPERTY_DELETED = 1


class PropertyStore:
    """Mixin giving a resource a property dictionary."""

    def __init__(self) -> None:
        self._properties: dict[str, object] = {}

    def set_property(self, name: str, value: object) -> None:
        self._properties[name] = value

    def get_property(self, name: str) -> tuple[bool, object]:
        if name in self._properties:
            return True, self._properties[name]
        return False, None

    def delete_property(self, name: str) -> None:
        if name not in self._properties:
            raise bad(ErrorCode.BAD_PROPERTY, "no property %r" % name)
        del self._properties[name]

    def property_names(self) -> list[str]:
        return sorted(self._properties)
