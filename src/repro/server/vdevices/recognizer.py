"""The speech recognizer virtual device class.

"Speech recognizers detect words spoken by a user.  A recognizer has a
single input, and produces recognition results as events.  The commands
Train, SetVocabulary, AdjustContext, and SaveVocabulary control which
words a recognizer will detect, based on application and user."
(paper section 5.1)

Command arguments:

* ``Train``: ``word`` (string), ``sound`` (int id of a training
  utterance already on the server);
* ``SetVocabulary``: ``words`` (string list; empty list = everything
  trained);
* ``AdjustContext``: optional ``rejection-threshold`` (float), ``band``
  (int);
* ``SaveVocabulary``: ``sound`` (int id) -- the snapshot is serialized
  as JSON bytes into that sound's data, where the client can read it
  back with ReadSoundData;
* ``Listen`` / ``StopListening``: begin/end streaming recognition on the
  wired input; each detected word arrives as a RECOGNITION event with
  ``word`` and ``score`` arguments.
"""

from __future__ import annotations

import json


from ...dsp.recognition import Recognizer, UtteranceDetector
from ...protocol import events as ev
from ...protocol.attributes import AttributeList
from ...protocol.errors import bad
from ...protocol.types import Command, DeviceClass, ErrorCode, EventCode, \
    PortDirection
from ..sounds import Sound
from .base import CommandHandle, InstantHandle, VirtualDevice, \
    register_device_class


class ListenHandle(CommandHandle):
    """Open-ended listening; runs until stopped."""

    def predict_end(self, block_start: int, frames: int) -> int | None:
        return None


@register_device_class
class RecognizerDevice(VirtualDevice):
    """Small-vocabulary trainable recognizer on a wired audio input."""

    DEVICE_CLASS = DeviceClass.RECOGNIZER
    BINDS_TO = None

    def __init__(self, device_id, loud, attributes) -> None:
        super().__init__(device_id, loud, attributes)
        self._recognizer: Recognizer | None = None
        self._detector: UtteranceDetector | None = None
        self._listening: ListenHandle | None = None

    def _build_ports(self) -> None:
        self._add_port(PortDirection.SINK)

    def _engine(self) -> Recognizer:
        if self._recognizer is None:
            self._recognizer = Recognizer(self.server.hub.sample_rate)
        return self._recognizer

    def _start(self, leaf, at_time: int) -> CommandHandle:
        command = leaf.command
        if command is Command.TRAIN:
            word = str(leaf.args.get("word", ""))
            sound_id = leaf.args.get("sound")
            if not word or sound_id is None:
                raise bad(ErrorCode.BAD_VALUE,
                          "Train needs word and sound arguments",
                          self.device_id)
            sound = self.server.resources.get(int(sound_id), Sound,
                                              ErrorCode.BAD_SOUND)
            samples = sound.decoded()
            if sound.sound_type.samplerate != self.server.hub.sample_rate:
                from ...dsp.resample import resample

                samples = resample(samples, sound.sound_type.samplerate,
                                   self.server.hub.sample_rate)
            try:
                self._engine().train(word, samples)
            except ValueError as exc:
                raise bad(ErrorCode.BAD_VALUE, str(exc), self.device_id)
            return InstantHandle(self, leaf, at_time)
        if command is Command.SET_VOCABULARY:
            words = [str(word) for word in leaf.args.get("words", [])]
            try:
                self._engine().set_vocabulary(words or None)
            except ValueError as exc:
                raise bad(ErrorCode.BAD_VALUE, str(exc), self.device_id)
            return InstantHandle(self, leaf, at_time)
        if command is Command.ADJUST_CONTEXT:
            threshold = leaf.args.get("rejection-threshold")
            band = leaf.args.get("band")
            try:
                self._engine().adjust_context(
                    rejection_threshold=(float(threshold)
                                         if threshold is not None else None),
                    band=int(band) if band is not None else None)
            except ValueError as exc:
                raise bad(ErrorCode.BAD_VALUE, str(exc), self.device_id)
            return InstantHandle(self, leaf, at_time)
        if command is Command.SAVE_VOCABULARY:
            sound_id = leaf.args.get("sound")
            if sound_id is None:
                raise bad(ErrorCode.BAD_VALUE,
                          "SaveVocabulary needs a sound argument",
                          self.device_id)
            sound = self.server.resources.get(int(sound_id), Sound,
                                              ErrorCode.BAD_SOUND)
            snapshot = json.dumps(self._engine().save_vocabulary())
            sound.write_bytes(0, snapshot.encode("utf-8"))
            return InstantHandle(self, leaf, at_time)
        if command is Command.LISTEN:
            if self._listening is not None and not self._listening.finished:
                raise bad(ErrorCode.BAD_MATCH, "already listening",
                          self.device_id)
            handle = ListenHandle(self, leaf, at_time)
            self._listening = handle
            self._detector = UtteranceDetector(self.server.hub.sample_rate)
            return handle
        if command is Command.STOP_LISTENING:
            if self._listening is not None and not self._listening.finished:
                self._listening.finish(at_time)
                self._listening = None
            return InstantHandle(self, leaf, at_time)
        return super()._start(leaf, at_time)

    def consume(self, sample_time: int, frames: int) -> None:
        handle = self._listening
        if handle is None or handle.finished or handle.paused:
            return
        block = self.pull_sink(0, sample_time, frames)
        utterance = self._detector.feed(block)
        if utterance is None:
            return
        result = self._engine().recognize(utterance)
        if result is not None:
            self.server.events.emit_device(
                self, EventCode.RECOGNITION,
                sample_time=sample_time,
                args=AttributeList({
                    ev.ARG_WORD: result.word,
                    ev.ARG_SCORE: float(result.score),
                }))

    def stop_now(self, at_time: int) -> None:
        if self._listening is not None and not self._listening.finished:
            self._listening.finish(at_time, status=1)
            self._listening = None
        super().stop_now(at_time)
