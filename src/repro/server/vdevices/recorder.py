"""The recorder virtual device class.

"Recorders have one or more input ports, typed according to a speech
encoding format.  They store sound data received on the input ports."
(paper section 5.1)

Record command arguments:

* ``sound`` (int, required) -- target sound id;
* ``termination`` (int, optional) -- a
  :class:`~repro.protocol.types.RecordTermination` value; default
  EXPLICIT (record until stopped);
* ``max-length-ms`` (int, optional) -- cap the recording length (implies
  a predictable end, so the conductor can pre-issue successors);
* ``pause-seconds`` (float, optional) -- trailing-silence length for
  ON_PAUSE termination (default 2.0).

Recorder attributes (paper's examples): ``agc`` enables automatic gain
control during recording; ``pause-compression`` removes pauses from the
stored audio at finalize time; ``pause-detection`` advertises ON_PAUSE
support.
"""

from __future__ import annotations

import numpy as np

from ...dsp.agc import AutomaticGainControl
from ...dsp.resample import StreamResampler
from ...dsp.silence import PauseDetector, compress_pauses
from ...protocol.attributes import (
    ATTR_AGC,
    ATTR_PAUSE_COMPRESSION,
)
from ...protocol.errors import bad
from ...protocol.types import (
    Command,
    DeviceClass,
    ErrorCode,
    EventCode,
    PortDirection,
    RecordTermination,
)
from ..sounds import Sound
from .base import CommandHandle, VirtualDevice, register_device_class


class RecordHandle(CommandHandle):
    """One in-flight Record command."""

    def __init__(self, device: "RecorderDevice", leaf, start_time: int,
                 sound: Sound, termination: RecordTermination,
                 max_frames: int | None,
                 pause_seconds: float) -> None:
        super().__init__(device, leaf, start_time)
        self.sound = sound
        self.termination = termination
        self.max_frames = max_frames
        self.not_before = start_time
        self.recorded_frames = 0
        self.hangup_seen = False
        rate = device.server.hub.sample_rate
        self.pause_detector = None
        if termination is RecordTermination.ON_PAUSE:
            self.pause_detector = PauseDetector(rate,
                                                pause_seconds=pause_seconds)

    def cancel(self, at_time: int) -> None:
        # A cancelled recording still keeps what it captured so far.
        if not self.finished:
            self.device.finalize_record(self, at_time, status=1)

    def predict_end(self, block_start: int, frames: int) -> int | None:
        if self.max_frames is None:
            return None
        start = max(block_start, self.not_before)
        end = start + (self.max_frames - self.recorded_frames)
        if end <= block_start + frames:
            return end
        return None


@register_device_class
class RecorderDevice(VirtualDevice):
    """Stores pulled audio into a server-side sound."""

    DEVICE_CLASS = DeviceClass.RECORDER
    BINDS_TO = None     # pure software

    def __init__(self, device_id, loud, attributes) -> None:
        super().__init__(device_id, loud, attributes)
        self._active: RecordHandle | None = None
        self._agc: AutomaticGainControl | None = None
        self._resampler: StreamResampler | None = None
        self._recorded_linear: list[np.ndarray] = []

    def _build_ports(self) -> None:
        self._add_port(PortDirection.SINK)

    # -- commands -------------------------------------------------------------

    def _start(self, leaf, at_time: int) -> CommandHandle:
        if leaf.command is Command.RECORD:
            return self._start_record(leaf, at_time)
        return super()._start(leaf, at_time)

    def _start_record(self, leaf, at_time: int) -> RecordHandle:
        if self._active is not None and not self._active.finished:
            raise bad(ErrorCode.BAD_MATCH, "recorder already recording",
                      self.device_id)
        sound_id = leaf.args.get("sound")
        if sound_id is None:
            raise bad(ErrorCode.BAD_VALUE, "Record needs a sound argument",
                      self.device_id)
        sound = self.server.resources.get(int(sound_id), Sound,
                                          ErrorCode.BAD_SOUND)
        termination = RecordTermination(
            int(leaf.args.get("termination", RecordTermination.EXPLICIT)))
        max_ms = leaf.args.get("max-length-ms")
        hub_rate = self.server.hub.sample_rate
        max_frames = None
        if max_ms is not None:
            max_frames = int(max_ms) * hub_rate // 1000
        pause_seconds = float(leaf.args.get("pause-seconds", 2.0))
        handle = RecordHandle(self, leaf, at_time, sound, termination,
                              max_frames, pause_seconds)
        sync_ms = int(leaf.args.get("sync-interval-ms", 0))
        handle.sync_interval = sync_ms * hub_rate // 1000 if sync_ms else 0
        handle.next_sync = handle.sync_interval
        if termination is RecordTermination.ON_HANGUP:
            self._watch_for_hangup(handle)
        self._active = handle
        self._recorded_linear = []
        if self.attributes.get(ATTR_AGC):
            self._agc = AutomaticGainControl(hub_rate)
        else:
            self._agc = None
        if sound.sound_type.samplerate != hub_rate:
            self._resampler = StreamResampler(hub_rate,
                                              sound.sound_type.samplerate)
        else:
            self._resampler = None
        self.server.events.emit_device(
            self, EventCode.RECORD_STARTED, detail=int(leaf.serial),
            sample_time=at_time)
        return handle

    def _watch_for_hangup(self, handle: RecordHandle) -> None:
        """ON_HANGUP termination: watch the wired telephone device."""
        from .telephone import TelephoneDevice

        for wire in self.wires_into(0):
            if isinstance(wire.source_device, TelephoneDevice):
                wire.source_device.add_hangup_watcher(
                    lambda: setattr(handle, "hangup_seen", True))
                return
        raise bad(ErrorCode.BAD_MATCH,
                  "ON_HANGUP termination needs a wired telephone",
                  self.device_id)

    # -- the block cycle ------------------------------------------------------

    def consume(self, sample_time: int, frames: int) -> None:
        handle = self._active
        if handle is None or handle.finished or handle.paused:
            return
        block = self.pull_sink(0, sample_time, frames)
        offset = max(0, handle.not_before - sample_time)
        data = block[offset:]
        end_of_block = sample_time + frames
        finish_at = None
        if handle.max_frames is not None:
            room = handle.max_frames - handle.recorded_frames
            if len(data) >= room:
                data = data[:room]
                finish_at = sample_time + offset + room
        if self._agc is not None and len(data):
            data = self._agc.process(data)
        if len(data):
            if handle.sound.is_stream:
                # Live monitoring: recorded audio goes straight into the
                # stream FIFO where the client can drain it with
                # ReadSoundData, flow-controlled by DATA_AVAILABLE.
                handle.sound.append_frames(
                    np.asarray(data, dtype=np.int16))
                self.server.events.emit_stream_available(handle.sound)
            else:
                self._recorded_linear.append(
                    np.asarray(data, dtype=np.int16))
            handle.recorded_frames += len(data)
        # Recording-progress SYNC events: the Soundviewer's record mode.
        if getattr(handle, "sync_interval", 0) > 0:
            while handle.recorded_frames >= handle.next_sync:
                self._emit_record_sync(handle, end_of_block)
                handle.next_sync += handle.sync_interval
        if handle.pause_detector is not None and finish_at is None:
            if handle.pause_detector.feed(data):
                finish_at = end_of_block
        if handle.hangup_seen and finish_at is None:
            finish_at = end_of_block
        if finish_at is not None:
            self.finalize_record(handle, finish_at)

    def _emit_record_sync(self, handle: RecordHandle,
                          sample_time: int) -> None:
        from ...protocol import events as ev
        from ...protocol.attributes import AttributeList

        total = handle.max_frames if handle.max_frames is not None else -1
        self.server.events.emit_device(
            self, EventCode.SYNC, detail=int(handle.leaf.serial),
            sample_time=sample_time,
            args=AttributeList({
                ev.ARG_COMMAND_SERIAL: int(handle.leaf.serial),
                ev.ARG_FRAMES_DONE: int(handle.recorded_frames),
                ev.ARG_FRAMES_TOTAL: int(total),
            }))

    def finalize_record(self, handle: RecordHandle, at_time: int,
                  status: int = 0) -> None:
        if handle.sound.is_stream:
            # Stream targets already received everything block by block.
            handle.sound.end_stream()
        else:
            recorded = (np.concatenate(self._recorded_linear)
                        if self._recorded_linear
                        else np.zeros(0, dtype=np.int16))
            hub_rate = self.server.hub.sample_rate
            if self.attributes.get(ATTR_PAUSE_COMPRESSION):
                recorded = compress_pauses(recorded, hub_rate)
            if self._resampler is not None and len(recorded):
                from ...dsp.resample import resample

                recorded = resample(recorded, hub_rate,
                                    handle.sound.sound_type.samplerate)
            handle.sound.append_frames(recorded)
        self._recorded_linear = []
        self._active = None
        handle.finish(at_time, status)
        self.server.events.emit_device(
            self, EventCode.RECORD_STOPPED, detail=int(handle.leaf.serial),
            sample_time=at_time)

    def stop_now(self, at_time: int) -> None:
        handle = self._active
        if handle is not None and not handle.finished:
            self.finalize_record(handle, at_time, status=1)
        super().stop_now(at_time)

    def save_state(self) -> dict:
        state = super().save_state()
        state["recording"] = self._active is not None
        return state
