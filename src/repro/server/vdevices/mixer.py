"""Mixer and crossbar virtual device classes.

"Mixers take data on multiple inputs, combine the streams and then
present the combined data on one or more output ports.  The relative
combination is determined by a percentage assigned to each input."

"A Crossbar is a switch to control routing of a number of inputs to a
number of outputs.  Each input can be connected to one or more of the
outputs."  (paper section 5.1)
"""

from __future__ import annotations

import numpy as np

from ...dsp.mixing import apply_gain, mix
from ...protocol.attributes import ATTR_INPUT_COUNT, ATTR_OUTPUT_COUNT
from ...protocol.errors import bad
from ...protocol.types import Command, DeviceClass, ErrorCode, PortDirection
from .base import CommandHandle, InstantHandle, VirtualDevice, \
    register_device_class


@register_device_class
class MixerDevice(VirtualDevice):
    """N sink ports mixed (with per-input percentages) to one source.

    Ports 0..N-1 are the inputs; port N is the combined output.
    SetGain arguments: ``input`` (port index), ``percent``.
    """

    DEVICE_CLASS = DeviceClass.MIXER
    BINDS_TO = None

    def __init__(self, device_id, loud, attributes) -> None:
        self._input_count = int(attributes.get(ATTR_INPUT_COUNT, 2))
        if self._input_count < 1:
            raise bad(ErrorCode.BAD_VALUE, "mixer needs at least one input",
                      device_id)
        super().__init__(device_id, loud, attributes)
        self.input_gains = [1.0] * self._input_count

    def _build_ports(self) -> None:
        for _ in range(self._input_count):
            self._add_port(PortDirection.SINK)
        self._add_port(PortDirection.SOURCE)

    @property
    def output_port(self) -> int:
        return self._input_count

    def _start(self, leaf, at_time: int) -> CommandHandle:
        if leaf.command is Command.SET_GAIN:
            index = int(leaf.args.get("input", 0))
            if not 0 <= index < self._input_count:
                raise bad(ErrorCode.BAD_VALUE, "no mixer input %d" % index,
                          self.device_id)
            self.input_gains[index] = \
                float(leaf.args.get("percent", 100)) / 100.0
            return InstantHandle(self, leaf, at_time)
        return super()._start(leaf, at_time)

    def _render(self, port_index: int, sample_time: int,
                frames: int) -> np.ndarray:
        if port_index != self.output_port:
            return np.zeros(frames, dtype=np.int16)
        blocks = [self.pull_sink(index, sample_time, frames)
                  for index in range(self._input_count)]
        combined = mix(blocks, gains=self.input_gains, length=frames)
        return apply_gain(combined, self.gain)

    def save_state(self) -> dict:
        state = super().save_state()
        state["input_gains"] = list(self.input_gains)
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.input_gains = list(state.get("input_gains", self.input_gains))


@register_device_class
class CrossbarDevice(VirtualDevice):
    """An N x M routing switch.

    Ports 0..N-1 are sinks (inputs); ports N..N+M-1 are sources
    (outputs).  SetRouting arguments: ``routing`` -- a flattened int list
    of (input, output) pairs; an empty list disconnects everything.
    """

    DEVICE_CLASS = DeviceClass.CROSSBAR
    BINDS_TO = None

    def __init__(self, device_id, loud, attributes) -> None:
        self._input_count = int(attributes.get(ATTR_INPUT_COUNT, 2))
        self._output_count = int(attributes.get(ATTR_OUTPUT_COUNT, 2))
        if self._input_count < 1 or self._output_count < 1:
            raise bad(ErrorCode.BAD_VALUE, "crossbar needs inputs and outputs",
                      device_id)
        super().__init__(device_id, loud, attributes)
        self.routing: set[tuple[int, int]] = set()

    def _build_ports(self) -> None:
        for _ in range(self._input_count):
            self._add_port(PortDirection.SINK)
        for _ in range(self._output_count):
            self._add_port(PortDirection.SOURCE)

    def output_port(self, output_index: int) -> int:
        return self._input_count + output_index

    def _start(self, leaf, at_time: int) -> CommandHandle:
        if leaf.command is Command.SET_ROUTING:
            flat = leaf.args.get("routing", [])
            if len(flat) % 2 != 0:
                raise bad(ErrorCode.BAD_VALUE,
                          "routing list must be (input, output) pairs",
                          self.device_id)
            routing = set()
            for position in range(0, len(flat), 2):
                source = int(flat[position])
                sink = int(flat[position + 1])
                if not (0 <= source < self._input_count
                        and 0 <= sink < self._output_count):
                    raise bad(ErrorCode.BAD_VALUE,
                              "routing pair (%d, %d) out of range"
                              % (source, sink), self.device_id)
                routing.add((source, sink))
            self.routing = routing
            return InstantHandle(self, leaf, at_time)
        return super()._start(leaf, at_time)

    def _render(self, port_index: int, sample_time: int,
                frames: int) -> np.ndarray:
        output_index = port_index - self._input_count
        if output_index < 0:
            return np.zeros(frames, dtype=np.int16)
        blocks = [self.pull_sink(source, sample_time, frames)
                  for source, sink in self.routing if sink == output_index]
        if not blocks:
            return np.zeros(frames, dtype=np.int16)
        return apply_gain(mix(blocks, length=frames), self.gain)

    def save_state(self) -> dict:
        state = super().save_state()
        state["routing"] = set(self.routing)
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.routing = set(state.get("routing", self.routing))
