"""Input and output virtual device classes.

"Inputs and outputs provide connections to external devices, such as
speakers and microphones.  They are used as wiring constructs to attach
to the other classes.  The base command is ChangeGain, which adjusts the
volume."  (paper section 5.1)
"""

from __future__ import annotations

import numpy as np

from ...dsp.mixing import apply_gain
from ...protocol.types import DeviceClass, PortDirection
from .base import VirtualDevice, register_device_class


@register_device_class
class InputDevice(VirtualDevice):
    """A microphone-like source: renders what the bound hardware hears."""

    DEVICE_CLASS = DeviceClass.INPUT
    BINDS_TO = DeviceClass.INPUT

    def _build_ports(self) -> None:
        self._add_port(PortDirection.SOURCE)

    def _render(self, port_index: int, sample_time: int,
                frames: int) -> np.ndarray:
        if self.bound is None:
            return np.zeros(frames, dtype=np.int16)
        block = self.bound.hardware.read(frames)
        return apply_gain(block, self.gain)


@register_device_class
class OutputDevice(VirtualDevice):
    """A speaker-like sink: pushes pulled audio to the bound hardware.

    Multiple active output virtual devices may share one physical
    speaker; the hardware mixes whatever each of them plays ("a speaker
    ... through which the sounds from multiple applications are
    simultaneously mixed, would be represented by multiple active virtual
    devices", paper section 5.3).
    """

    DEVICE_CLASS = DeviceClass.OUTPUT
    BINDS_TO = DeviceClass.OUTPUT

    def _build_ports(self) -> None:
        self._add_port(PortDirection.SINK)

    def consume(self, sample_time: int, frames: int) -> None:
        if self.bound is None:
            return
        block = self.pull_sink(0, sample_time, frames)
        self.bound.hardware.play(apply_gain(block, self.gain))
