"""The player virtual device class.

"Players have one or more output ports, typed according to a speech
encoding format.  They convert sound data to the output port type and
then transmit the data out the port ...  The commands Play, Stop, Pause,
and Restart control the transmission of the data on the ports."
(paper section 5.1)

Play command arguments (attribute-list keys):

* ``sound`` (int, required) -- the sound id to play;
* ``sync-interval-ms`` (int, optional) -- emit SYNC events at this
  period during playback (drives Soundviewer-style widgets).
"""

from __future__ import annotations

import numpy as np

from ...dsp.resample import resample
from ...protocol import events as ev
from ...protocol.attributes import AttributeList
from ...protocol.errors import bad
from ...protocol.types import (
    Command,
    DeviceClass,
    ErrorCode,
    EventCode,
    PortDirection,
)
from ..sounds import Sound
from .base import CommandHandle, VirtualDevice, register_device_class
from .playback import PlaybackHandle, PlaybackProgram


@register_device_class
class PlayerDevice(VirtualDevice, PlaybackProgram):
    """Plays server-side sounds out its source port."""

    DEVICE_CLASS = DeviceClass.PLAYER
    BINDS_TO = None     # pure software

    def __init__(self, device_id, loud, attributes) -> None:
        super().__init__(device_id, loud, attributes)
        self.init_program()

    def _build_ports(self) -> None:
        self._add_port(PortDirection.SOURCE)

    # -- commands -------------------------------------------------------------

    def _start(self, leaf, at_time: int) -> CommandHandle:
        if leaf.command is Command.PLAY:
            return self._start_play(leaf, at_time)
        if leaf.command is Command.CHANGE_GAIN and leaf.queued:
            return self.start_queued_gain(leaf, at_time)
        return super()._start(leaf, at_time)

    def _start_play(self, leaf, at_time: int) -> PlaybackHandle:
        sound_id = leaf.args.get("sound")
        if sound_id is None:
            raise bad(ErrorCode.BAD_VALUE, "Play needs a sound argument",
                      self.device_id)
        sound = self.server.resources.get(int(sound_id), Sound,
                                          ErrorCode.BAD_SOUND)
        sync_ms = int(leaf.args.get("sync-interval-ms", 0))
        hub_rate = self.server.hub.sample_rate
        sync_frames = sync_ms * hub_rate // 1000 if sync_ms else 0
        if sound.is_stream:
            if sound.sound_type.samplerate != hub_rate:
                raise bad(ErrorCode.BAD_MATCH,
                          "stream sound rate must match the device layer",
                          sound.sound_id)
            handle = PlaybackHandle(self, leaf, at_time, None,
                                    stream_sound=sound,
                                    sync_interval_frames=sync_frames)
        else:
            samples = sound.decoded()
            # "They convert sound data to the output port type": the
            # internal transport is device-layer-rate linear PCM, so a
            # CD-rate sound is resampled here once, at play start.
            if sound.sound_type.samplerate != hub_rate:
                samples = resample(samples, sound.sound_type.samplerate,
                                   hub_rate)
            handle = PlaybackHandle(self, leaf, at_time,
                                    np.asarray(samples, dtype=np.int16),
                                    sync_interval_frames=sync_frames)
            from ..render_proc import _shippable_source

            if _shippable_source(sound):
                handle.source_key = (sound._cache_token, sound.version)
                handle.source_sound = sound
        handle.not_before = at_time
        self.enqueue_playback(handle)
        self.server.events.emit_device(
            self, EventCode.PLAY_STARTED, detail=int(leaf.serial),
            sample_time=at_time)
        return handle

    # -- rendering ------------------------------------------------------------

    def _render(self, port_index: int, sample_time: int,
                frames: int) -> np.ndarray:
        return self.program_render(sample_time, frames, self.gain)

    def consume(self, sample_time: int, frames: int) -> None:
        self.program_consume(sample_time, frames)

    def on_sync_point(self, item: PlaybackHandle, now: int) -> None:
        total = item.total_frames
        self.server.events.emit_device(
            self, EventCode.SYNC, detail=int(item.leaf.serial),
            sample_time=now,
            args=AttributeList({
                ev.ARG_COMMAND_SERIAL: int(item.leaf.serial),
                ev.ARG_FRAMES_DONE: int(item.frames_played),
                ev.ARG_FRAMES_TOTAL: int(total if total is not None else -1),
            }))

    def _notify_stream_state(self, item: PlaybackHandle) -> None:
        sound = item.stream_sound
        if sound.stream_hungry:
            self.server.events.emit_stream_hungry(sound)

    def stop_now(self, at_time: int) -> None:
        super().stop_now(at_time)
        self.program_cancel_all(at_time)
        self.server.events.emit_device(
            self, EventCode.PLAY_STOPPED, sample_time=at_time)
