"""Sample-accurate playback programs.

The machinery behind every source device that plays queued material
(players, speech synthesizers, music synthesizers): an ordered program of
items, each with an optional absolute earliest-start time, rendered into
output blocks with *zero* samples dropped or inserted between
consecutive items.

This is where the paper's section 6.2 guarantee lives: "Pre-issuing
commands allows plays to occur without a single dropped or inserted
sample."  The conductor pre-issues successors by appending items with a
``not_before`` equal to the predicted end of their predecessor; rendering
then stitches them together mid-block.
"""

from __future__ import annotations

import numpy as np

from .base import CommandHandle, VirtualDevice


class PlaybackHandle(CommandHandle):
    """Handle for one queued playback item."""

    def __init__(self, device: VirtualDevice, leaf, start_time: int,
                 samples: np.ndarray | None, stream_sound=None,
                 sync_interval_frames: int = 0) -> None:
        super().__init__(device, leaf, start_time)
        #: Fully-rendered material (None for live stream sounds).
        self.samples = samples
        self.stream_sound = stream_sound
        self.cursor = 0
        self.not_before = start_time
        self.started_playing = False
        self.sync_interval = sync_interval_frames
        self.next_sync = sync_interval_frames
        self.frames_played = 0
        #: Provenance for the process render backend: the decode-cache
        #: key ``(token, version)`` and the Sound whose stored bytes a
        #: worker can re-decode into exactly ``samples``.  None when the
        #: material is not reproducible from stored bytes (streams,
        #: server-recorded ADPCM takes) -- such items pin their row to
        #: the hub.
        self.source_key: tuple[int, int] | None = None
        self.source_sound = None

    @property
    def total_frames(self) -> int | None:
        if self.samples is not None:
            return len(self.samples)
        return None

    def remaining_frames(self) -> int | None:
        if self.samples is not None:
            return len(self.samples) - self.cursor
        return None

    def predict_end(self, block_start: int, frames: int) -> int | None:
        return self.device.program_predict_end(self, block_start, frames)


class PlaybackProgram:
    """Mixin for VirtualDevice subclasses that render queued material.

    The host class calls :meth:`program_render` from its ``_render`` and
    gets back a block plus the side effects (handle completions, sync
    callbacks) applied.
    """

    def init_program(self) -> None:
        self.program: list[PlaybackHandle] = []
        #: Pending sample-accurate gain changes: (sample_time, gain).
        self._gain_points: list[tuple[int, float]] = []
        self._current_gain = 1.0

    def schedule_gain(self, at_time: int, gain: float) -> None:
        """Queue a gain change taking effect at an exact sample time.

        This is what makes the paper's footnote-4 idiom (Play, queued
        ChangeGain, Play) sample-accurate: the gain flips exactly at the
        boundary between the two sounds, not at a block edge.
        """
        self._gain_points.append((at_time, gain))
        self._gain_points.sort()

    def _apply_gain_automation(self, out: np.ndarray, sample_time: int,
                               frames: int) -> np.ndarray:
        from ...dsp.mixing import apply_gain

        if not self._gain_points and self._current_gain == 1.0:
            return out
        block_end = sample_time + frames
        result = out.copy()
        position = 0
        while self._gain_points and self._gain_points[0][0] < block_end:
            at_time, gain = self._gain_points.pop(0)
            offset = max(0, at_time - sample_time)
            if offset > position and self._current_gain != 1.0:
                result[position:offset] = apply_gain(
                    result[position:offset], self._current_gain)
            self._current_gain = gain
            position = offset
        if self._current_gain != 1.0:
            result[position:] = apply_gain(result[position:],
                                           self._current_gain)
        return result

    def enqueue_playback(self, handle: PlaybackHandle) -> PlaybackHandle:
        self.program.append(handle)
        return handle

    def program_predict_end(self, handle: PlaybackHandle, block_start: int,
                            frames: int) -> int | None:
        """When will ``handle`` finish, assuming uninterrupted rendering?

        Walks the program chain accumulating each predecessor's remaining
        material.  Returns None if any predecessor (or the handle itself)
        has unknowable length (live stream) or is paused.
        """
        cursor_time = block_start
        for item in self.program:
            if item.paused:
                return None
            start = max(cursor_time, item.not_before)
            remaining = item.remaining_frames()
            if remaining is None:
                return None
            end = start + remaining
            if item is handle:
                return end
            cursor_time = end
        return None     # handle already finished or cancelled

    def program_render(self, sample_time: int, frames: int,
                       gain: float = 1.0) -> np.ndarray:
        """Render one block from the program, finishing exhausted items."""
        out = np.zeros(frames, dtype=np.int16)
        block_end = sample_time + frames
        cursor_time = sample_time
        finished: list[PlaybackHandle] = []
        for item in self.program:
            if item.finished:
                finished.append(item)
                continue
            if item.paused:
                break
            start = max(cursor_time, item.not_before)
            if start >= block_end:
                break
            offset = start - sample_time
            room = frames - offset
            if item.samples is not None:
                take = min(room, len(item.samples) - item.cursor)
                if take > 0:
                    out[offset:offset + take] = \
                        item.samples[item.cursor:item.cursor + take]
                    item.cursor += take
                    item.frames_played += take
                    item.started_playing = True
                cursor_time = start + max(take, 0)
                self._emit_sync(item, sample_time + offset + max(take, 0))
                if item.cursor >= len(item.samples):
                    item.finish(cursor_time)
                    finished.append(item)
                    continue
                break   # block full
            # Live stream item: pull whatever the stream has.
            chunk = item.stream_sound.read_frames(0, room)
            got = len(chunk)
            if got > 0:
                out[offset:offset + got] = chunk
                item.frames_played += got
                item.started_playing = True
            if (got < room and item.started_playing
                    and not item.stream_sound.stream_ended):
                # The client fell behind the sample clock: an underrun.
                self._m_underruns.inc()
            cursor_time = start + got
            self._notify_stream_state(item)
            if (item.stream_sound.stream_ended
                    and item.stream_sound.frame_length == 0):
                item.finish(cursor_time)
                finished.append(item)
                continue
            break   # streams never overlap a successor mid-block
        for item in finished:
            if item in self.program:
                self.program.remove(item)
        out = self._apply_gain_automation(out, sample_time, frames)
        if gain != 1.0:
            from ...dsp.mixing import apply_gain

            out = apply_gain(out, gain)
        return out

    def _emit_sync(self, item: PlaybackHandle, now: int) -> None:
        """Fire the host's sync hook at every crossed sync interval."""
        if item.sync_interval <= 0:
            return
        while item.frames_played >= item.next_sync:
            self.on_sync_point(item, now)
            item.next_sync += item.sync_interval
        total = item.total_frames
        if total is not None and item.frames_played >= total:
            # Always mark the final sample so progress bars reach 100%.
            self.on_sync_point(item, now)
            item.next_sync = item.frames_played + item.sync_interval

    # Hooks the host class may override.

    def on_sync_point(self, item: PlaybackHandle, now: int) -> None:
        """Called at each sync interval during playback."""

    def _notify_stream_state(self, item: PlaybackHandle) -> None:
        """Called after consuming from a stream item (flow control)."""

    def program_consume(self, sample_time: int, frames: int) -> None:
        """Advance the program even when nothing pulls this source.

        A player "transmits the data out the port" whether or not a
        wire consumes it: an unwired (or unrouted-crossbar) play still
        runs to completion in audio time rather than hanging the queue.
        """
        if 0 not in self._render_cache:
            self.render_source(0, sample_time, frames)

    def start_queued_gain(self, leaf, at_time: int):
        """Queued ChangeGain on a program device: schedule, don't jump."""
        from .base import InstantHandle

        self.schedule_gain(at_time,
                           float(leaf.args.get("gain", 100)) / 100.0)
        return InstantHandle(self, leaf, at_time)

    # Shared pause/stop behaviour for program devices.

    def program_cancel_all(self, at_time: int) -> None:
        for item in self.program:
            item.finish(at_time, status=1)
        self.program = [item for item in self.program if not item.finished]
