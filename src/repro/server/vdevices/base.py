"""Virtual device base machinery.

"The different classes of virtual devices are subclasses of a common
virtual device object class." (paper section 6.1)

A virtual device:

* belongs to a LOUD and has a class, attributes, and typed ports;
* may be *bound* to a physical device once its LOUD is mapped;
* renders audio on demand: sinks *pull* from the sources wired to them,
  with per-block memoization so fan-out (one source wired to two sinks)
  sees one consistent block;
* executes commands through :class:`CommandHandle` objects that the
  command-queue conductor can start at an exact sample time, pause,
  cancel, and -- crucially for the paper's gapless guarantee -- ask to
  *predict* their completion sample so successors can be pre-issued.

Subclassing (the protocol's extension mechanism) happens through
:data:`DEVICE_CLASS_REGISTRY`: registering a new class name makes it
instantiable through the unmodified CreateVirtualDevice request.
"""

from __future__ import annotations

import numpy as np

from ...protocol.attributes import (
    ATTR_ENCODING,
    ATTR_SAMPLE_RATE,
    ATTR_SAMPLE_SIZE,
    AttributeList,
)
from ...protocol.errors import bad
from ...protocol.types import (
    Command,
    DeviceClass,
    Encoding,
    ErrorCode,
    MULAW_8K,
    PortDirection,
    PortInfo,
    SoundType,
)


class CommandHandle:
    """One in-flight device command, owned by the conductor."""

    can_pause = True

    def __init__(self, device: "VirtualDevice", leaf,
                 start_time: int) -> None:
        self.device = device
        self.leaf = leaf
        self.start_time = start_time
        self.finished = False
        self.finish_time: int | None = None
        self.status = 0     # 0 = completed, 1 = stopped, 2 = failed
        self.paused = False

    # -- conductor interface -------------------------------------------------

    def predict_end(self, block_start: int, frames: int) -> int | None:
        """Absolute sample time this command will finish, if it will
        finish within the current block and that is knowable; else None.
        """
        return None

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def cancel(self, at_time: int) -> None:
        """Stop the command immediately (immediate-mode Stop, queue stop)."""
        self.finish(at_time, status=1)

    def finish(self, at_time: int, status: int = 0) -> None:
        if not self.finished:
            self.finished = True
            self.finish_time = at_time
            self.status = status


class InstantHandle(CommandHandle):
    """A command that completes the moment it starts (ChangeGain, ...)."""

    def __init__(self, device: "VirtualDevice", leaf,
                 start_time: int) -> None:
        super().__init__(device, leaf, start_time)
        self.finish(start_time)

    def predict_end(self, block_start: int, frames: int) -> int | None:
        return self.start_time


class VirtualDevice:
    """Common base of all virtual device classes."""

    DEVICE_CLASS: DeviceClass
    #: Physical device classes this virtual class can bind to; None means
    #: the device is pure software and needs no hardware.
    BINDS_TO: DeviceClass | None = None

    def __init__(self, device_id: int, loud, attributes: AttributeList
                 ) -> None:
        self.device_id = device_id
        self.loud = loud
        self.attributes = attributes
        self.ports: list[PortInfo] = []
        self.wires: list = []
        self.bound = None           # server-side PhysicalDevice wrapper
        self.gain = 1.0
        self.server = loud.server if loud is not None else None
        if self.server is not None:
            metrics = self.server.metrics
        else:
            from ...obs import NULL_REGISTRY as metrics
        self._m_wire_frames = metrics.counter("audio.wire_frames")
        self._m_frames_mixed = metrics.counter("audio.frames_mixed")
        self._m_mixes = metrics.counter("audio.mix_operations")
        self._m_underruns = metrics.counter("audio.stream_underruns")
        self._block_serial = -1
        self._render_cache: dict[int, np.ndarray] = {}
        self.handles: list[CommandHandle] = []
        self._build_ports()
        if self.server is not None:
            self.server.invalidate_render_plan()

    # -- construction ---------------------------------------------------------

    def _build_ports(self) -> None:
        """Subclasses populate ``self.ports``."""
        raise NotImplementedError

    def _port_type(self) -> SoundType:
        """Sound type implied by this device's attributes (default mu-law).

        "In this example, the greeting message is stored in an 8-bit
        mu-law encoding.  Therefore, the attribute specification for the
        player is 8-bit mu-law." (paper section 5.9)
        """
        encoding = self.attributes.get(ATTR_ENCODING)
        rate = self.attributes.get(ATTR_SAMPLE_RATE)
        size = self.attributes.get(ATTR_SAMPLE_SIZE)
        if encoding is None and rate is None and size is None:
            return MULAW_8K
        encoding = Encoding(encoding) if encoding is not None \
            else Encoding.MULAW
        if size is None:
            size = {Encoding.MULAW: 8, Encoding.ALAW: 8, Encoding.PCM16: 16,
                    Encoding.ADPCM: 4}.get(encoding, 8)
        if rate is None:
            rate = 8000
        return SoundType(encoding, int(size), int(rate))

    def _add_port(self, direction: PortDirection,
                  sound_type: SoundType | None = None) -> None:
        index = len(self.ports)
        self.ports.append(PortInfo(index, direction,
                                   sound_type or self._port_type()))

    def port(self, index: int) -> PortInfo:
        if not 0 <= index < len(self.ports):
            raise bad(ErrorCode.BAD_VALUE, "no port %d" % index,
                      self.device_id)
        return self.ports[index]

    # -- wiring ---------------------------------------------------------------

    def attach_wire(self, wire) -> None:
        self.wires.append(wire)

    def detach_wire(self, wire) -> None:
        if wire in self.wires:
            self.wires.remove(wire)

    def wires_into(self, port_index: int) -> list:
        return [wire for wire in self.wires
                if wire.sink_device is self and wire.sink_port == port_index]

    def wires_out_of(self, port_index: int) -> list:
        return [wire for wire in self.wires
                if wire.source_device is self
                and wire.source_port == port_index]

    # -- binding --------------------------------------------------------------

    def bind(self, physical) -> None:
        self.bound = physical

    def unbind(self) -> None:
        self.bound = None

    @property
    def is_bound(self) -> bool:
        return self.bound is not None or self.BINDS_TO is None

    # -- the block cycle ------------------------------------------------------

    def begin_tick(self, sample_time: int, frames: int) -> None:
        """Reset per-block memoization; called once per hub block."""
        self._block_serial = sample_time
        self._render_cache = {}

    def render_source(self, port_index: int, sample_time: int,
                      frames: int) -> np.ndarray:
        """Block of linear samples this source port produces this tick."""
        if port_index in self._render_cache:
            return self._render_cache[port_index]
        block = self._render(port_index, sample_time, frames)
        self._render_cache[port_index] = block
        return block

    def _render(self, port_index: int, sample_time: int,
                frames: int) -> np.ndarray:
        """Subclass hook behind the memoization."""
        return np.zeros(frames, dtype=np.int16)

    def pull_sink(self, port_index: int, sample_time: int,
                  frames: int) -> np.ndarray:
        """Mix everything wired into one of our sink ports."""
        from ...dsp.mixing import mix

        blocks = [wire.source_device.render_source(
                      wire.source_port, sample_time, frames)
                  for wire in self.wires_into(port_index)]
        if not blocks:
            return np.zeros(frames, dtype=np.int16)
        # Wire throughput: one counted block per wire feeding this sink.
        self._m_wire_frames.inc(frames * len(blocks))
        if len(blocks) == 1 and len(blocks[0]) == frames:
            return blocks[0]
        self._m_mixes.inc()
        self._m_frames_mixed.inc(frames * len(blocks))
        return mix(blocks, length=frames)

    def consume(self, sample_time: int, frames: int) -> None:
        """Active sinks drive their pulls here (called when LOUD active)."""

    # -- commands -------------------------------------------------------------

    def start_command(self, leaf, at_time: int) -> CommandHandle:
        """Begin executing a command; returns its handle.

        Raises ProtocolError for commands the class does not support.
        """
        handle = self._start(leaf, at_time)
        self.handles.append(handle)
        return handle

    def _start(self, leaf, at_time: int) -> CommandHandle:
        command = leaf.command
        if command is Command.CHANGE_GAIN:
            self.gain = float(leaf.args.get("gain", 100)) / 100.0
            return InstantHandle(self, leaf, at_time)
        if command is Command.STOP:
            self.stop_now(at_time)
            return InstantHandle(self, leaf, at_time)
        if command is Command.PAUSE:
            self.pause_now()
            return InstantHandle(self, leaf, at_time)
        if command is Command.RESUME:
            self.resume_now()
            return InstantHandle(self, leaf, at_time)
        raise bad(ErrorCode.BAD_MATCH,
                  "device class %s does not support %s"
                  % (self.DEVICE_CLASS.name, command.name), self.device_id)

    def collect_finished(self) -> list[CommandHandle]:
        """Handles that finished since last collection (conductor post)."""
        finished = [handle for handle in self.handles if handle.finished]
        self.handles = [handle for handle in self.handles
                        if not handle.finished]
        return finished

    # -- immediate-mode operations --------------------------------------------

    def stop_now(self, at_time: int) -> None:
        """Immediate Stop: cancel all in-flight commands on this device."""
        for handle in self.handles:
            if not handle.finished:
                handle.cancel(at_time)

    def pause_now(self) -> None:
        for handle in self.handles:
            if not handle.finished:
                handle.pause()

    def resume_now(self) -> None:
        for handle in self.handles:
            if not handle.finished:
                handle.resume()

    # -- activation state save/restore (paper section 5.4) --------------------

    def save_state(self) -> dict:
        """State to restore when the LOUD is re-activated."""
        return {"gain": self.gain}

    def restore_state(self, state: dict) -> None:
        self.gain = state.get("gain", self.gain)

    def describe(self) -> AttributeList:
        """Attributes for QueryVirtualDevice, including the binding."""
        merged = AttributeList(dict(self.attributes.items))
        if self.bound is not None:
            merged["device-id"] = self.bound.device_id
            merged["name"] = self.bound.name
        return merged


#: name -> class mapping used by CreateVirtualDevice; extensions register
#: subclasses here ("allowing extension of the class hierarchy using
#: existing protocol capabilities").
DEVICE_CLASS_REGISTRY: dict[DeviceClass, type[VirtualDevice]] = {}


def register_device_class(cls: type[VirtualDevice]) -> type[VirtualDevice]:
    """Class decorator: make a VirtualDevice subclass instantiable."""
    DEVICE_CLASS_REGISTRY[cls.DEVICE_CLASS] = cls
    return cls


def create_virtual_device(device_id: int, loud,
                          device_class: DeviceClass,
                          attributes: AttributeList) -> VirtualDevice:
    try:
        cls = DEVICE_CLASS_REGISTRY[device_class]
    except KeyError:
        raise bad(ErrorCode.BAD_VALUE,
                  "unknown device class %d" % device_class,
                  device_id) from None
    return cls(device_id, loud, attributes)
