"""The speech synthesizer virtual device class.

"Speech synthesizers speak text strings.  They have a single output for
the synthesized audio.  The commands SetTextLanguage and SetValues
control interpretation of the text and acoustical characteristics of the
vocal tract model used for synthesis.  SetExceptionList allows
applications to override the normal pronunciation of words, such as
names or technical terms.  SpeakText accepts commands to speak text
strings."  (paper section 5.1)

Command arguments:

* ``SpeakText``: ``text`` (string); optional ``sync-interval-ms``.
* ``SetTextLanguage``: ``language`` (string, only "english" ships).
* ``SetValues``: any of ``pitch`` (Hz), ``rate`` (multiplier),
  ``volume`` (0..100).
* ``SetExceptionList``: ``words`` (string list) and ``pronunciations``
  (string list of space-separated phoneme symbols, parallel to words).
"""

from __future__ import annotations

import numpy as np

from ...dsp.synthesis import FormantSynthesizer
from ...protocol.errors import bad
from ...protocol.types import Command, DeviceClass, ErrorCode, PortDirection
from .base import CommandHandle, InstantHandle, VirtualDevice, \
    register_device_class
from .playback import PlaybackHandle, PlaybackProgram


@register_device_class
class SynthesizerDevice(VirtualDevice, PlaybackProgram):
    """Text in, audio out; playback is queued like a player's."""

    DEVICE_CLASS = DeviceClass.SYNTHESIZER
    BINDS_TO = None

    def __init__(self, device_id, loud, attributes) -> None:
        super().__init__(device_id, loud, attributes)
        self.init_program()
        self._engine: FormantSynthesizer | None = None

    def _build_ports(self) -> None:
        self._add_port(PortDirection.SOURCE)

    def _synth(self) -> FormantSynthesizer:
        if self._engine is None:
            self._engine = FormantSynthesizer(self.server.hub.sample_rate)
        return self._engine

    def _start(self, leaf, at_time: int) -> CommandHandle:
        command = leaf.command
        if command is Command.CHANGE_GAIN and leaf.queued:
            return self.start_queued_gain(leaf, at_time)
        if command is Command.SPEAK_TEXT:
            text = str(leaf.args.get("text", ""))
            # The vocal tract model runs instantaneously in simulation;
            # the rendered waveform is queued for sample-accurate output.
            samples = self._synth().synthesize_text(text)
            sync_ms = int(leaf.args.get("sync-interval-ms", 0))
            sync_frames = (sync_ms * self.server.hub.sample_rate // 1000
                           if sync_ms else 0)
            handle = PlaybackHandle(self, leaf, at_time,
                                    np.asarray(samples, dtype=np.int16),
                                    sync_interval_frames=sync_frames)
            handle.not_before = at_time
            return self.enqueue_playback(handle)
        if command is Command.SET_TEXT_LANGUAGE:
            language = str(leaf.args.get("language", "english"))
            try:
                self._synth().set_language(language)
            except ValueError as exc:
                raise bad(ErrorCode.BAD_VALUE, str(exc), self.device_id)
            return InstantHandle(self, leaf, at_time)
        if command is Command.SET_VALUES:
            synth = self._synth()
            if "pitch" in leaf.args:
                pitch = float(leaf.args["pitch"])
                if not 40.0 <= pitch <= 500.0:
                    raise bad(ErrorCode.BAD_VALUE, "pitch out of range",
                              self.device_id)
                synth.parameters.pitch = pitch
            if "rate" in leaf.args:
                rate = float(leaf.args["rate"])
                if not 0.25 <= rate <= 4.0:
                    raise bad(ErrorCode.BAD_VALUE, "rate out of range",
                              self.device_id)
                synth.parameters.rate = rate
            if "volume" in leaf.args:
                volume = float(leaf.args["volume"])
                if not 0.0 <= volume <= 100.0:
                    raise bad(ErrorCode.BAD_VALUE, "volume out of range",
                              self.device_id)
                synth.parameters.volume = volume / 100.0
            return InstantHandle(self, leaf, at_time)
        if command is Command.SET_EXCEPTION_LIST:
            words = leaf.args.get("words", [])
            pronunciations = leaf.args.get("pronunciations", [])
            if len(words) != len(pronunciations):
                raise bad(ErrorCode.BAD_VALUE,
                          "words and pronunciations must be parallel lists",
                          self.device_id)
            synth = self._synth()
            for word, pronunciation in zip(words, pronunciations):
                try:
                    synth.set_exception(str(word),
                                        str(pronunciation).split())
                except ValueError as exc:
                    raise bad(ErrorCode.BAD_VALUE, str(exc), self.device_id)
            return InstantHandle(self, leaf, at_time)
        return super()._start(leaf, at_time)

    def consume(self, sample_time: int, frames: int) -> None:
        self.program_consume(sample_time, frames)

    def _render(self, port_index: int, sample_time: int,
                frames: int) -> np.ndarray:
        return self.program_render(sample_time, frames, self.gain)

    def stop_now(self, at_time: int) -> None:
        super().stop_now(at_time)
        self.program_cancel_all(at_time)
