"""The DSP virtual device class.

"A Digital Signal Processor is a set of software to manipulate one or
more audio data streams.  It may have several inputs and outputs.
Commands have not yet been specified."  (paper section 5.1)

The paper left DSP commands unspecified; we specify a minimal
SetProgram command so the class is usable:

* ``SetProgram``: ``program`` (string) -- one of
  ``"null"`` (pass-through),
  ``"gain:<factor>"`` (fixed linear gain),
  ``"echo:<delay-ms>:<feedback>"`` (feedback echo), or
  ``"lowpass:<alpha>"`` (one-pole lowpass, alpha in (0, 1]).
"""

from __future__ import annotations

import numpy as np

from ...dsp.mixing import apply_gain, saturate
from ...protocol.errors import bad
from ...protocol.types import Command, DeviceClass, ErrorCode, PortDirection
from .base import CommandHandle, InstantHandle, VirtualDevice, \
    register_device_class


class _Effect:
    def process(self, block: np.ndarray) -> np.ndarray:
        return block


class _GainEffect(_Effect):
    def __init__(self, factor: float) -> None:
        self.factor = factor

    def process(self, block: np.ndarray) -> np.ndarray:
        return apply_gain(block, self.factor)


class _EchoEffect(_Effect):
    def __init__(self, delay_frames: int, feedback: float) -> None:
        if delay_frames < 1:
            raise ValueError("echo delay too short")
        if not 0.0 <= feedback < 1.0:
            raise ValueError("feedback must be in [0, 1)")
        self.delay = delay_frames
        self.feedback = feedback
        self._history = np.zeros(delay_frames, dtype=np.float64)
        self._cursor = 0

    def process(self, block: np.ndarray) -> np.ndarray:
        out = np.empty(len(block), dtype=np.float64)
        data = np.asarray(block, dtype=np.float64)
        for position in range(len(data)):
            echoed = data[position] + \
                self.feedback * self._history[self._cursor]
            self._history[self._cursor] = echoed
            self._cursor = (self._cursor + 1) % self.delay
            out[position] = echoed
        return saturate(np.round(out).astype(np.int64))


class _LowpassEffect(_Effect):
    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._state = 0.0

    def process(self, block: np.ndarray) -> np.ndarray:
        out = np.empty(len(block), dtype=np.float64)
        state = self._state
        alpha = self.alpha
        for position, value in enumerate(
                np.asarray(block, dtype=np.float64)):
            state += alpha * (value - state)
            out[position] = state
        self._state = state
        return saturate(np.round(out).astype(np.int64))


def _parse_program(program: str) -> _Effect:
    parts = program.split(":")
    kind = parts[0]
    if kind == "null":
        return _Effect()
    if kind == "gain" and len(parts) == 2:
        return _GainEffect(float(parts[1]))
    if kind == "echo" and len(parts) == 3:
        return None     # needs the sample rate; resolved by the device
    if kind == "lowpass" and len(parts) == 2:
        return _LowpassEffect(float(parts[1]))
    raise ValueError("unknown DSP program %r" % program)


@register_device_class
class DspDevice(VirtualDevice):
    """A software signal processor in the wire graph."""

    DEVICE_CLASS = DeviceClass.DSP
    BINDS_TO = None

    def __init__(self, device_id, loud, attributes) -> None:
        super().__init__(device_id, loud, attributes)
        self._effect: _Effect = _Effect()
        self.program = "null"

    def _build_ports(self) -> None:
        self._add_port(PortDirection.SINK)
        self._add_port(PortDirection.SOURCE)

    def _start(self, leaf, at_time: int) -> CommandHandle:
        if leaf.command is Command.SET_PROGRAM:
            program = str(leaf.args.get("program", "null"))
            try:
                effect = _parse_program(program)
                if effect is None:  # echo needs the rate
                    _, delay_ms, feedback = program.split(":")
                    delay_frames = (int(delay_ms)
                                    * self.server.hub.sample_rate // 1000)
                    effect = _EchoEffect(delay_frames, float(feedback))
            except ValueError as exc:
                raise bad(ErrorCode.BAD_VALUE, str(exc), self.device_id)
            self._effect = effect
            self.program = program
            return InstantHandle(self, leaf, at_time)
        return super()._start(leaf, at_time)

    def _render(self, port_index: int, sample_time: int,
                frames: int) -> np.ndarray:
        if port_index != 1:
            return np.zeros(frames, dtype=np.int16)
        block = self.pull_sink(0, sample_time, frames)
        return apply_gain(self._effect.process(block), self.gain)

    def save_state(self) -> dict:
        state = super().save_state()
        state["program"] = self.program
        return state
