"""The music synthesizer virtual device class.

"Music Synthesizers process note-based audio.  They accept commands, and
produce audio data on their single output.  The commands SetState and
SetVoice control music generation parameters.  Note makes a sound."
(paper section 5.1)

Command arguments:

* ``Note``: ``note`` (string name like "C4" or int MIDI number),
  ``beats`` (float, default 1.0);
* ``SetVoice``: any of ``waveform``, ``volume``, ``detune-cents``,
  ``attack``, ``decay``, ``sustain``, ``release``;
* ``SetState``: ``tempo-bpm`` (float).

Notes are queued playback items, so consecutive Note commands play
back-to-back with no gap -- a queued melody.
"""

from __future__ import annotations

import numpy as np

from ...dsp.music import MusicSynthesizer
from ...protocol.errors import bad
from ...protocol.types import Command, DeviceClass, ErrorCode, PortDirection
from .base import CommandHandle, InstantHandle, VirtualDevice, \
    register_device_class
from .playback import PlaybackHandle, PlaybackProgram


@register_device_class
class MusicDevice(VirtualDevice, PlaybackProgram):
    """Note-based synthesis with a queued output program."""

    DEVICE_CLASS = DeviceClass.MUSIC
    BINDS_TO = None

    def __init__(self, device_id, loud, attributes) -> None:
        super().__init__(device_id, loud, attributes)
        self.init_program()
        self._engine: MusicSynthesizer | None = None

    def _build_ports(self) -> None:
        self._add_port(PortDirection.SOURCE)

    def _synth(self) -> MusicSynthesizer:
        if self._engine is None:
            self._engine = MusicSynthesizer(self.server.hub.sample_rate)
        return self._engine

    def _start(self, leaf, at_time: int) -> CommandHandle:
        command = leaf.command
        if command is Command.CHANGE_GAIN and leaf.queued:
            return self.start_queued_gain(leaf, at_time)
        if command is Command.NOTE:
            note = leaf.args.get("note")
            if note is None:
                raise bad(ErrorCode.BAD_VALUE, "Note needs a note argument",
                          self.device_id)
            beats = float(leaf.args.get("beats", 1.0))
            if beats <= 0:
                raise bad(ErrorCode.BAD_VALUE, "beats must be positive",
                          self.device_id)
            try:
                if isinstance(note, str):
                    samples = self._synth().render_note(note, beats)
                else:
                    samples = self._synth().render_note(int(note), beats)
            except ValueError as exc:
                raise bad(ErrorCode.BAD_VALUE, str(exc), self.device_id)
            handle = PlaybackHandle(self, leaf, at_time,
                                    np.asarray(samples, dtype=np.int16))
            handle.not_before = at_time
            return self.enqueue_playback(handle)
        if command is Command.SET_VOICE:
            updates = {}
            for key in ("waveform", "volume", "detune-cents", "attack",
                        "decay", "sustain", "release"):
                if key in leaf.args:
                    updates[key.replace("-", "_")] = leaf.args[key]
            try:
                self._synth().set_voice(**updates)
            except ValueError as exc:
                raise bad(ErrorCode.BAD_VALUE, str(exc), self.device_id)
            return InstantHandle(self, leaf, at_time)
        if command is Command.SET_STATE:
            tempo = leaf.args.get("tempo-bpm")
            try:
                self._synth().set_state(
                    tempo_bpm=float(tempo) if tempo is not None else None)
            except ValueError as exc:
                raise bad(ErrorCode.BAD_VALUE, str(exc), self.device_id)
            return InstantHandle(self, leaf, at_time)
        return super()._start(leaf, at_time)

    def consume(self, sample_time: int, frames: int) -> None:
        self.program_consume(sample_time, frames)

    def _render(self, port_index: int, sample_time: int,
                frames: int) -> np.ndarray:
        return self.program_render(sample_time, frames, self.gain)

    def stop_now(self, at_time: int) -> None:
        super().stop_now(at_time)
        self.program_cancel_all(at_time)
