"""Virtual device classes (paper section 5.1).

Importing this package registers every class in
:data:`~repro.server.vdevices.base.DEVICE_CLASS_REGISTRY`.
"""

from .base import (
    CommandHandle,
    DEVICE_CLASS_REGISTRY,
    InstantHandle,
    VirtualDevice,
    create_virtual_device,
    register_device_class,
)
from .io import InputDevice, OutputDevice
from .mixer import CrossbarDevice, MixerDevice
from .music import MusicDevice
from .dspdev import DspDevice
from .player import PlayerDevice
from .playback import PlaybackHandle, PlaybackProgram
from .recognizer import RecognizerDevice
from .recorder import RecordHandle, RecorderDevice
from .synthesizer import SynthesizerDevice
from .telephone import TelephoneDevice

__all__ = [
    "CommandHandle", "CrossbarDevice", "DEVICE_CLASS_REGISTRY", "DspDevice",
    "InputDevice", "InstantHandle", "MixerDevice", "MusicDevice",
    "OutputDevice", "PlaybackHandle", "PlaybackProgram", "PlayerDevice",
    "RecognizerDevice", "RecordHandle", "RecorderDevice",
    "SynthesizerDevice", "TelephoneDevice", "VirtualDevice",
    "create_virtual_device", "register_device_class",
]
