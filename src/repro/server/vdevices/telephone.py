"""The telephone virtual device class.

"Telephones are combined input and output devices with the commands
Dial, Answer, SendDTMF, Stop, Pause, Resume."  (paper section 5.1)

Ports: source 0 carries audio *from* the line (the caller's voice), sink
1 carries audio *to* the line (greetings, prompts).  The device also:

* relays call signaling (ring, answer, far-end hangup) as TELEPHONE_RING
  / TELEPHONE_ANSWERED / CALL_PROGRESS events;
* decodes in-band touch tones on the incoming audio into DTMF_NOTIFY
  events -- this is how touch-tone menus hear the caller's key presses;
* sends DTMF in-band for the SendDTMF command.

Command arguments: ``Dial`` takes ``number`` (string); ``SendDTMF``
takes ``digits`` (string).
"""

from __future__ import annotations

import numpy as np

from ...dsp.dtmf import DtmfDetector, generate_digits
from ...dsp.mixing import apply_gain, mix
from ...protocol import events as ev
from ...protocol.attributes import AttributeList
from ...protocol.errors import bad
from ...protocol.types import (
    CallProgress,
    Command,
    DeviceClass,
    ErrorCode,
    EventCode,
    PortDirection,
)
from .base import CommandHandle, InstantHandle, VirtualDevice, \
    register_device_class


class DialHandle(CommandHandle):
    """In flight until the call connects or fails; cannot be paused.

    "If the application issues a request to pause a queue in which the
    current command is operating on a device that cannot be paused, the
    queue is stopped."  (paper section 5.5)
    """

    can_pause = False

    def predict_end(self, block_start: int, frames: int) -> int | None:
        return None     # the far end decides


class SendDtmfHandle(CommandHandle):
    """Finishes when the rendered tones have been transmitted."""

    def __init__(self, device, leaf, start_time: int,
                 samples: np.ndarray) -> None:
        super().__init__(device, leaf, start_time)
        self.samples = samples
        self.cursor = 0
        self.not_before = start_time

    def predict_end(self, block_start: int, frames: int) -> int | None:
        start = max(block_start, self.not_before)
        end = start + (len(self.samples) - self.cursor)
        if end <= block_start + frames:
            return end
        return None


@register_device_class
class TelephoneDevice(VirtualDevice):
    """One telephone line, as seen by an application."""

    DEVICE_CLASS = DeviceClass.TELEPHONE
    BINDS_TO = DeviceClass.TELEPHONE

    def __init__(self, device_id, loud, attributes) -> None:
        super().__init__(device_id, loud, attributes)
        self._dtmf_detector: DtmfDetector | None = None
        self._dial_handle: DialHandle | None = None
        self._dtmf_out: list[SendDtmfHandle] = []
        self._hangup_watchers: list = []

    def _build_ports(self) -> None:
        self._add_port(PortDirection.SOURCE)    # from the line
        self._add_port(PortDirection.SINK)      # to the line

    # -- binding: hook up signaling -------------------------------------------

    def bind(self, physical) -> None:
        super().bind(physical)
        physical.attach_vdevice(self)
        self._dtmf_detector = DtmfDetector(self.server.hub.sample_rate)

    def unbind(self) -> None:
        if self.bound is not None:
            self.bound.detach_vdevice(self)
        super().unbind()

    def add_hangup_watcher(self, watcher) -> None:
        """Recorder ON_HANGUP termination support.

        If the far end is already gone when the watcher registers (the
        caller hung up during the greeting, a beat before Record
        started), fire immediately -- otherwise the recording would run
        forever waiting for a hangup that already happened.
        """
        if self.bound is not None and not self._call_is_up():
            watcher()
            return
        self._hangup_watchers.append(watcher)

    def _call_is_up(self) -> bool:
        line = self.bound.hardware.line
        if line.exchange is None:
            return False
        if not self.bound.hardware.off_hook:
            return False
        return line.exchange.call_for(line) is not None

    # -- signaling callbacks (relayed by the physical wrapper) ----------------

    def on_ring_start(self, caller_info) -> None:
        args = AttributeList()
        if caller_info is not None:
            args[ev.ARG_CALLER_ID] = caller_info.number
            if caller_info.forwarded_from is not None:
                args[ev.ARG_FORWARDED_FROM] = caller_info.forwarded_from
        self.server.events.emit_device(
            self, EventCode.TELEPHONE_RING,
            sample_time=self.server.hub.sample_time, args=args)

    def on_answered(self) -> None:
        now = self.server.hub.sample_time
        self.server.events.emit_device(
            self, EventCode.TELEPHONE_ANSWERED, sample_time=now)
        self._emit_progress(CallProgress.CONNECTED)
        if self._dial_handle is not None and not self._dial_handle.finished:
            self._dial_handle.finish(now)
            self._dial_handle = None

    def on_far_hangup(self) -> None:
        self._emit_progress(CallProgress.HANGUP)
        for watcher in self._hangup_watchers:
            watcher()
        self._hangup_watchers = []

    def on_call_failed(self, reason: str) -> None:
        now = self.server.hub.sample_time
        detail = (CallProgress.BUSY if reason == "busy"
                  else CallProgress.FAILED)
        self._emit_progress(detail)
        if self._dial_handle is not None and not self._dial_handle.finished:
            self._dial_handle.finish(now, status=2)
            self._dial_handle = None

    def _emit_progress(self, progress: CallProgress) -> None:
        self.server.events.emit_device(
            self, EventCode.CALL_PROGRESS, detail=int(progress),
            sample_time=self.server.hub.sample_time)

    # -- commands -------------------------------------------------------------

    def _start(self, leaf, at_time: int) -> CommandHandle:
        command = leaf.command
        if self.bound is None:
            raise bad(ErrorCode.BAD_DEVICE, "telephone not bound to a line",
                      self.device_id)
        if command is Command.DIAL:
            number = leaf.args.get("number")
            if not number:
                raise bad(ErrorCode.BAD_VALUE, "Dial needs a number",
                          self.device_id)
            handle = DialHandle(self, leaf, at_time)
            self._dial_handle = handle
            self._emit_progress(CallProgress.DIALING)
            try:
                self.bound.hardware.dial(str(number))
            except RuntimeError as exc:
                handle.finish(at_time, status=2)
                self._dial_handle = None
                raise bad(ErrorCode.BAD_MATCH, str(exc), self.device_id)
            return handle
        if command is Command.ANSWER:
            self.bound.hardware.answer()
            return InstantHandle(self, leaf, at_time)
        if command is Command.HANG_UP:
            self.bound.hardware.hang_up()
            self._emit_progress(CallProgress.IDLE)
            return InstantHandle(self, leaf, at_time)
        if command is Command.SEND_DTMF:
            digits = str(leaf.args.get("digits", ""))
            if not digits:
                raise bad(ErrorCode.BAD_VALUE, "SendDTMF needs digits",
                          self.device_id)
            samples = generate_digits(digits,
                                      self.server.hub.sample_rate)
            handle = SendDtmfHandle(self, leaf, at_time, samples)
            self._dtmf_out.append(handle)
            return handle
        return super()._start(leaf, at_time)

    # -- the block cycle ------------------------------------------------------

    def _render(self, port_index: int, sample_time: int,
                frames: int) -> np.ndarray:
        """Source port 0: the far party's audio."""
        if self.bound is None:
            return np.zeros(frames, dtype=np.int16)
        return self.bound.hardware.read(frames)

    def consume(self, sample_time: int, frames: int) -> None:
        if self.bound is None:
            return
        # Outbound: whatever is wired to our sink, plus in-flight DTMF.
        blocks = [self.pull_sink(1, sample_time, frames)]
        for handle in list(self._dtmf_out):
            if handle.finished:
                self._dtmf_out.remove(handle)
                continue
            if handle.paused:
                continue
            start = max(sample_time, handle.not_before)
            offset = start - sample_time
            if offset >= frames:
                continue
            take = min(frames - offset,
                       len(handle.samples) - handle.cursor)
            tone_block = np.zeros(frames, dtype=np.int16)
            tone_block[offset:offset + take] = \
                handle.samples[handle.cursor:handle.cursor + take]
            handle.cursor += take
            blocks.append(tone_block)
            if handle.cursor >= len(handle.samples):
                handle.finish(start + take)
                self._dtmf_out.remove(handle)
        outbound = mix(blocks, length=frames)
        self.bound.hardware.play(apply_gain(outbound, self.gain))
        # Inbound: decode touch tones for DTMF_NOTIFY.
        if self._dtmf_detector is not None:
            inbound = self.render_source(0, sample_time, frames)
            for digit in self._dtmf_detector.feed(inbound):
                self.server.events.emit_device(
                    self, EventCode.DTMF_NOTIFY,
                    sample_time=sample_time,
                    args=AttributeList({ev.ARG_DIGIT: digit}))

    def stop_now(self, at_time: int) -> None:
        for handle in self._dtmf_out:
            handle.cancel(at_time)
        self._dtmf_out = []
        super().stop_now(at_time)

    def describe(self) -> AttributeList:
        merged = super().describe()
        if self.bound is not None:
            merged["phone-number"] = self.bound.hardware.number
        return merged
