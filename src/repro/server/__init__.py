"""The audio server (paper sections 4-6)."""

from .core import AudioServer
from .resources import DEVICE_LOUD_ID

__all__ = ["AudioServer", "DEVICE_LOUD_ID"]
