"""Command-line entry point: run an audio server.

Usage::

    repro-audio-server [--port N] [--realtime] [--catalogue DIR]
                       [--speakerphone] [--rate HZ] [--block FRAMES]
                       [--stats-interval SECONDS]
                       [--outbound-bound MESSAGES]
                       [--stall-deadline SECONDS]
                       [--render-workers N] [--render-min-rows ROWS]
                       [--render-backend {serial,threads,procs}]
                       [--io-backend {threads,shards}] [--io-shards N]
                       [--trunk-listen [HOST:]PORT]
                       [--trunk-route PREFIX=HOST:PORT]...
                       [--trunk-name NAME]
                       [--mesh-registry [HOST:]PORT]
                       [--mesh-join HOST:PORT]
                       [--mesh-prefix PREFIX]... [--mesh-neighbor NAME]...

SIGUSR1 dumps a stats snapshot to stderr at any time; one more snapshot
is dumped at shutdown.

Trunking (docs/TELEPHONY.md): ``--trunk-listen`` accepts trunk
connections from peer servers; each ``--trunk-route`` homes a number
prefix at a peer, so local clients can dial numbers that live on other
servers' exchanges.

Mesh routing (docs/TELEPHONY.md, "Mesh routing"): ``--mesh-registry``
serves the fleet's discovery registry from this node; ``--mesh-join``
points at a registry served elsewhere.  Either one joins the mesh:
peers are discovered and linked automatically, each ``--mesh-prefix``
is advertised fleet-wide as homed here, and calls to prefixes owned
further away are tandem-switched through intermediate nodes.  Static
``--trunk-route`` entries stay as overrides.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from ..hardware.config import HardwareConfig
from ..obs import StatsLogger
from ..protocol.types import DEFAULT_PORT
from ..trunk import parse_route
from .core import AudioServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-audio-server",
        description="The desktop-audio server (USENIX '91 reproduction).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--realtime", action="store_true",
                        help="pace audio blocks against the wall clock")
    parser.add_argument("--catalogue", default=None, metavar="DIR",
                        help="directory of .au files served as the "
                             "'local' catalogue")
    parser.add_argument("--speakerphone", action="store_true",
                        help="add the hard-wired speakerphone trio")
    parser.add_argument("--rate", type=int, default=8000,
                        help="device-layer sample rate (default 8000)")
    parser.add_argument("--block", type=int, default=160,
                        help="block size in frames (default 160 = 20 ms)")
    parser.add_argument("--stats-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="dump a stats snapshot to stderr every "
                             "SECONDS (also dumped on SIGUSR1 and at "
                             "shutdown)")
    parser.add_argument("--outbound-bound", type=int, default=1024,
                        metavar="MESSAGES",
                        help="per-client outbound queue bound; oldest "
                             "events are shed past it (default 1024)")
    parser.add_argument("--stall-deadline", type=float, default=5.0,
                        metavar="SECONDS",
                        help="evict a client whose socket blocks its "
                             "writer thread this long (default 5.0)")
    parser.add_argument("--render-workers", type=int, default=None,
                        metavar="N",
                        help="render-pool worker threads (default: the "
                             "core count, capped; <2 disables parallel "
                             "rendering; env REPRO_RENDER_WORKERS)")
    parser.add_argument("--render-min-rows", type=int, default=None,
                        metavar="ROWS",
                        help="render plans below this many rows stay on "
                             "the serial path (default 4)")
    parser.add_argument("--render-backend", default=None,
                        choices=("serial", "threads", "procs"),
                        help="render backend: 'threads' (default), "
                             "'procs' (process sharding over shared "
                             "memory), or 'serial' (no pool; env "
                             "REPRO_RENDER_BACKEND)")
    parser.add_argument("--io-backend", default=None,
                        choices=("threads", "shards"),
                        help="connection I/O backend: 'threads' (default; "
                             "reader+writer pumps per client) or 'shards' "
                             "(selector-loop pool, C10k scale; env "
                             "REPRO_IO_BACKEND)")
    parser.add_argument("--io-shards", type=int, default=None, metavar="N",
                        help="selector loops in the shards backend "
                             "(default: scaled to the core count; env "
                             "REPRO_IO_SHARDS)")
    parser.add_argument("--trunk-listen", default=None,
                        metavar="[HOST:]PORT",
                        help="accept inter-server telephony trunks on "
                             "this address (default host 127.0.0.1)")
    parser.add_argument("--trunk-route", action="append", default=[],
                        metavar="PREFIX=HOST:PORT", dest="trunk_routes",
                        help="home numbers starting with PREFIX at the "
                             "peer server's trunk listener (repeatable)")
    parser.add_argument("--trunk-name", default="",
                        help="name announced in the trunk handshake "
                             "(default host:port; must be fleet-unique "
                             "when joining a mesh)")
    parser.add_argument("--mesh-registry", default=None,
                        metavar="[HOST:]PORT",
                        help="serve the mesh discovery registry on this "
                             "address (and join the mesh through it)")
    parser.add_argument("--mesh-join", default=None, metavar="HOST:PORT",
                        help="join the mesh via a registry served by "
                             "another node")
    parser.add_argument("--mesh-prefix", action="append", default=[],
                        metavar="PREFIX", dest="mesh_prefixes",
                        help="number prefix this exchange originates, "
                             "advertised fleet-wide (repeatable)")
    parser.add_argument("--mesh-neighbor", action="append", default=[],
                        metavar="NAME", dest="mesh_neighbors",
                        help="only initiate trunk links to these peers "
                             "(repeatable; default: link to every "
                             "discovered peer)")
    return parser


def parse_trunk_listen(text: str) -> tuple[str, int]:
    """Parse a ``[HOST:]PORT`` trunk listen address."""
    host, _, port = text.rpartition(":")
    if not port.isdigit():
        raise ValueError(
            "trunk listen address must be [HOST:]PORT: %r" % text)
    return (host or "127.0.0.1", int(port))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = HardwareConfig(sample_rate=args.rate, block_frames=args.block,
                            speakerphone=args.speakerphone)
    trunk_listen = (parse_trunk_listen(args.trunk_listen)
                    if args.trunk_listen is not None else None)
    trunk_routes = [parse_route(route) for route in args.trunk_routes]
    server = AudioServer(config, host=args.host, port=args.port,
                         realtime=args.realtime,
                         catalogue_dir=args.catalogue,
                         outbound_bound=args.outbound_bound,
                         stall_deadline=args.stall_deadline,
                         render_workers=args.render_workers,
                         render_min_rows=args.render_min_rows,
                         render_backend=args.render_backend,
                         io_backend=args.io_backend,
                         io_shards=args.io_shards,
                         trunk_listen=trunk_listen,
                         trunk_routes=trunk_routes,
                         trunk_name=args.trunk_name,
                         mesh_registry=(
                             parse_trunk_listen(args.mesh_registry)
                             if args.mesh_registry is not None else None),
                         mesh_join=(
                             parse_trunk_listen(args.mesh_join)
                             if args.mesh_join is not None else None),
                         mesh_prefixes=args.mesh_prefixes,
                         mesh_neighbors=args.mesh_neighbors)
    server.start()
    print("audio server listening on %s:%d" % (server.host, server.port))
    if server.trunk is not None and server.trunk.port is not None:
        print("trunk listening on %s:%d"
              % (server.trunk.host, server.trunk.port))
    if server.trunk is not None and server.trunk.mesh_enabled:
        registry = server.trunk._registry
        if registry is not None:
            print("mesh registry serving on %s:%d"
                  % (registry.host, registry.port))
        print("mesh routing enabled (node %r)" % server.trunk.name)
    stats = StatsLogger(server, interval=args.stats_interval)
    stats.start()
    stop = threading.Event()

    def handle_signal(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGINT, handle_signal)
    signal.signal(signal.SIGTERM, handle_signal)
    if hasattr(signal, "SIGUSR1"):
        signal.signal(signal.SIGUSR1, lambda _signum, _frame: stats.dump())
    try:
        stop.wait()
    finally:
        stats.stop()
        stats.dump()
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
