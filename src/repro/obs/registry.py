"""Lock-cheap metrics: counters, gauges, fixed-bucket histograms.

Design constraints (this code runs inside the dispatch path and the
audio block cycle):

* **stdlib only** -- no prometheus_client, no numpy;
* **cheap increments** -- one short critical section per update, metric
  objects are resolved once and cached by the instrumented code, not
  looked up per event;
* **a no-op mode** -- a registry created with ``enabled=False`` hands
  out shared null instruments whose update methods do nothing, so the
  cost of metering can be measured (and removed) without touching the
  instrumented code.

Snapshots are plain dicts of plain values, safe to json-dump, ship over
the wire, or diff between two points in time.
"""

from __future__ import annotations

import bisect
import threading

#: Default latency bucket upper bounds, in seconds.  Chosen for a
#: dispatch path whose fast requests take tens of microseconds and whose
#: slow ones (bulk sound writes) take milliseconds.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: Bucket upper bounds for histograms observed in *microseconds* (lock
#: waits, tick durations): 1 us resolution at the bottom, 100 ms at the
#: overflow end.
MICROSECOND_BUCKETS = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0, 100000.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """An instantaneous value that can move both ways."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``edges`` are inclusive upper bounds; one overflow bucket catches
    everything beyond the last edge, so ``len(counts) == len(edges) + 1``
    and ``sum(counts) == count`` always holds.
    """

    __slots__ = ("name", "edges", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str,
                 edges: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("histogram edges must be strictly increasing")
        self.name = name
        self.edges = tuple(float(edge) for edge in edges)
        self._counts = [0] * (len(self.edges) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def counts(self) -> list[int]:
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket edges (upper-bound biased)."""
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        target = q * total
        seen = 0
        for index, bucket in enumerate(counts):
            seen += bucket
            if seen >= target:
                if index < len(self.edges):
                    return self.edges[index]
                return self.edges[-1] if self.edges else 0.0
        return self.edges[-1] if self.edges else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "edges": list(self.edges),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by disabled registries."""

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Named instruments, created on first use, snapshot on demand.

    Instrument lookup is dict-get fast on the hit path (no lock; dict
    reads are atomic under the GIL) and takes the registry lock only to
    create.  Instrumented code should still cache the returned object
    when it sits on a hot path.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null", edges=(1.0,))

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return self._null_counter
        found = self._counters.get(name)
        if found is not None:
            return found
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return self._null_gauge
        found = self._gauges.get(name)
        if found is not None:
            return found
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str,
                  edges: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        if not self.enabled:
            return self._null_histogram
        found = self._histograms.get(name)
        if found is not None:
            return found
        with self._lock:
            return self._histograms.setdefault(name, Histogram(name, edges))

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything the registry knows, as plain json-able values."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: float(g.value) for g in gauges},
            "histograms": {h.name: h.snapshot() for h in histograms},
        }

    def reset(self) -> None:
        """Forget every instrument (tests; a live server never resets)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: Shared disabled registry for components constructed without a server
#: (detached devices and queues in unit tests).
NULL_REGISTRY = MetricsRegistry(enabled=False)
