"""repro.obs: the server's observability plane.

A serving stack that arbitrates many simultaneous clients is opaque
without numbers: request latencies, wire throughput, event fan-out,
queue depths.  This package supplies them with stdlib-only pieces:

* :class:`~repro.obs.registry.MetricsRegistry` -- lock-cheap counters,
  gauges and fixed-bucket histograms, with a no-op mode so the hot path
  can run unmetered;
* :class:`~repro.obs.logger.StatsLogger` -- periodic (or on-demand)
  human-readable snapshot dumps, hooked to SIGUSR1 and shutdown by the
  server entry point.

The same snapshot that the logger prints travels over the protocol as
the GET_SERVER_STATS reply, so remote clients see exactly what the
operator sees.
"""

from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    MICROSECOND_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .logger import StatsLogger

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MICROSECOND_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsLogger",
]
