"""Snapshot logging: periodic, on-signal, and at-shutdown stats dumps.

The registry's snapshot is a nested dict; this module renders it as a
compact, operator-readable block and (optionally) re-renders it every N
seconds from a daemon thread.  The server entry point wires ``dump`` to
SIGUSR1 and calls it once more at shutdown, xdpyinfo-style.
"""

from __future__ import annotations

import sys
import threading


def format_snapshot(snapshot: dict) -> str:
    """Render a stats snapshot (see ``AudioServer.stats_snapshot``)."""
    lines = ["-- server stats --"]
    server = snapshot.get("server", {})
    if server:
        lines.append("uptime %.1fs  sample-time %d  clients %d"
                     % (server.get("uptime_seconds", 0.0),
                        server.get("sample_time", 0),
                        server.get("clients_connected", 0)))
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        lines.append("  %-44s %d" % (name, counters[name]))
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        lines.append("  %-44s %g" % (name, gauges[name]))
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        count = hist.get("count", 0)
        if not count:
            continue
        mean = hist.get("sum", 0.0) / count
        lines.append("  %-44s n=%d mean=%.6f sum=%.4f"
                     % (name, count, mean, hist.get("sum", 0.0)))
    for client in snapshot.get("clients", []):
        lines.append("  client %-20s req=%d in=%dB out=%dB queued=%d"
                     % (client.get("name") or "?",
                        client.get("requests", 0),
                        client.get("bytes_in", 0),
                        client.get("bytes_out", 0),
                        client.get("queue_depth", 0)))
    return "\n".join(lines)


class StatsLogger:
    """Dumps a server's stats snapshot to a stream, maybe periodically."""

    def __init__(self, server, interval: float | None = None,
                 out=None) -> None:
        self.server = server
        self.interval = interval
        self.out = out if out is not None else sys.stderr
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def dump(self) -> None:
        """Write one snapshot now (signal handlers call this)."""
        try:
            snapshot = self.server.stats_snapshot()
        except Exception as exc:  # a stats dump must never kill the server
            print("stats snapshot failed: %s" % exc, file=self.out)
            return
        print(format_snapshot(snapshot), file=self.out, flush=True)

    def start(self) -> None:
        """Begin periodic dumps (no-op without an interval)."""
        if self.interval is None or self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run,
                                        name="stats-logger", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.dump()
