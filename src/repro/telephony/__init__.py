"""Simulated telephone network: exchange, lines, calls, scripted parties.

Substitutes for the paper's analog telephone hardware and the public
network behind it; see DESIGN.md section 2 for the substitution argument.
"""

from .call import Call, CallState
from .exchange import TelephoneExchange
from .line import CallerInfo, HookState, Line
from .party import (
    Dial,
    HangUp,
    SendDtmf,
    SendDtmfSignaled,
    SimulatedParty,
    Speak,
    Step,
    Wait,
    WaitForConnect,
    WaitForSilence,
)

__all__ = [
    "Call", "CallState", "CallerInfo", "Dial", "HangUp", "HookState",
    "Line", "SendDtmf", "SendDtmfSignaled", "SimulatedParty", "Speak",
    "Step", "TelephoneExchange", "Wait", "WaitForConnect",
    "WaitForSilence",
]
