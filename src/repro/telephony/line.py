"""Subscriber lines.

A :class:`Line` is one subscriber loop on the simulated exchange: it has
a directory number, a hook state, and full-duplex audio at block
granularity.  The workstation's telephone hardware (the hub's
LineDevice) owns one side; the exchange bridges the other side to the
remote party when a call is up.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

import numpy as np


class HookState(enum.Enum):
    ON_HOOK = "on-hook"
    OFF_HOOK = "off-hook"


@dataclass(frozen=True)
class CallerInfo:
    """Calling-party information delivered with ringing (paper 5.1).

    "Telephones may report information about incoming calls, such as the
    identity of the caller and whether the call was forwarded from
    another number."
    """

    number: str
    forwarded_from: str | None = None


class Line:
    """One subscriber line: number, hook state, block-granular audio."""

    def __init__(self, number: str, exchange=None) -> None:
        self.number = number
        self.exchange = exchange
        self.hook = HookState.ON_HOOK
        self.ringing = False
        self.caller_info: CallerInfo | None = None
        #: Numbers this line forwards to when it does not answer.
        self.forward_to: str | None = None
        self._inbound: deque[np.ndarray] = deque()
        self._listeners: list = []

    # -- signaling ----------------------------------------------------------

    def add_listener(self, listener) -> None:
        """Register for on_ring_start/on_ring_stop/on_far_hangup/
        on_answered callbacks."""
        self._listeners.append(listener)

    def _notify(self, method_name: str, *args) -> None:
        for listener in self._listeners:
            method = getattr(listener, method_name, None)
            if method is not None:
                method(*args)

    def start_ringing(self, caller_info: CallerInfo) -> None:
        self.ringing = True
        self.caller_info = caller_info
        self._notify("on_ring_start", caller_info)

    def stop_ringing(self) -> None:
        if self.ringing:
            self.ringing = False
            self._notify("on_ring_stop")

    def far_end_answered(self) -> None:
        self._notify("on_answered")

    def far_end_hung_up(self) -> None:
        self._inbound.clear()
        self._notify("on_far_hangup")

    def call_failed(self, reason: str) -> None:
        self._notify("on_call_failed", reason)

    # -- hook control (the subscriber's side) --------------------------------

    def off_hook(self) -> None:
        """Lift the handset: answers a ringing call or starts a new one."""
        if self.hook is HookState.OFF_HOOK:
            return
        self.hook = HookState.OFF_HOOK
        self.stop_ringing()
        if self.exchange is not None:
            self.exchange.line_off_hook(self)

    def on_hook(self) -> None:
        """Hang up."""
        if self.hook is HookState.ON_HOOK:
            return
        self.hook = HookState.ON_HOOK
        self._inbound.clear()
        if self.exchange is not None:
            self.exchange.line_on_hook(self)

    def dial(self, number: str) -> None:
        """Dial a number (the line must be off hook)."""
        if self.hook is not HookState.OFF_HOOK:
            raise RuntimeError("cannot dial on hook")
        if self.exchange is not None:
            self.exchange.dial(self, number)

    # -- audio ---------------------------------------------------------------

    def send_audio(self, samples: np.ndarray) -> None:
        """Transmit a block toward the far end (dropped if no call)."""
        if self.exchange is not None and self.hook is HookState.OFF_HOOK:
            self.exchange.route_audio(self, np.asarray(samples,
                                                       dtype=np.int16))

    def deliver_audio(self, samples: np.ndarray) -> None:
        """Called by the exchange: a block arrived from the far end."""
        self._inbound.append(samples)
        # Bound buffering to about a second at telephone rate so a stalled
        # reader does not accumulate unbounded audio.
        while len(self._inbound) > 64:
            self._inbound.popleft()

    def receive_audio(self, frames: int) -> np.ndarray:
        """The next ``frames`` received samples (silence-padded)."""
        out = np.zeros(frames, dtype=np.int16)
        filled = 0
        while filled < frames and self._inbound:
            block = self._inbound[0]
            take = min(len(block), frames - filled)
            out[filled:filled + take] = block[:take]
            if take == len(block):
                self._inbound.popleft()
            else:
                self._inbound[0] = block[take:]
            filled += take
        return out
