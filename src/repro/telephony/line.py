"""Subscriber lines.

A :class:`Line` is one subscriber loop on the simulated exchange: it has
a directory number, a hook state, and full-duplex audio at block
granularity.  The workstation's telephone hardware (the hub's
LineDevice) owns one side; the exchange bridges the other side to the
remote party when a call is up.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

import numpy as np


class HookState(enum.Enum):
    ON_HOOK = "on-hook"
    OFF_HOOK = "off-hook"


@dataclass(frozen=True)
class CallerInfo:
    """Calling-party information delivered with ringing (paper 5.1).

    "Telephones may report information about incoming calls, such as the
    identity of the caller and whether the call was forwarded from
    another number."
    """

    number: str
    forwarded_from: str | None = None


class Line:
    """One subscriber line: number, hook state, block-granular audio."""

    #: Default inbound buffering bound, in seconds of audio.  A stalled
    #: reader sheds the oldest blocks past this (the exchange counts
    #: them as ``telephony.line.dropped_blocks``).
    MAX_BUFFER_SECONDS = 1.28

    def __init__(self, number: str, exchange=None,
                 max_buffer_seconds: float | None = None) -> None:
        self.number = number
        self.exchange = exchange
        self.hook = HookState.ON_HOOK
        self.ringing = False
        self.caller_info: CallerInfo | None = None
        #: Numbers this line forwards to when it does not answer.
        self.forward_to: str | None = None
        self.max_buffer_seconds = (self.MAX_BUFFER_SECONDS
                                   if max_buffer_seconds is None
                                   else max_buffer_seconds)
        self._inbound: deque[np.ndarray] = deque()
        self._buffered = 0      # samples currently in _inbound
        self._listeners: list = []

    def _sample_rate(self) -> int:
        return self.exchange.sample_rate if self.exchange is not None else 8000

    def _max_buffered_samples(self) -> int:
        return int(self.max_buffer_seconds * self._sample_rate())

    # -- signaling ----------------------------------------------------------

    def add_listener(self, listener) -> None:
        """Register for on_ring_start/on_ring_stop/on_far_hangup/
        on_answered callbacks."""
        self._listeners.append(listener)

    def _notify(self, method_name: str, *args) -> None:
        for listener in self._listeners:
            method = getattr(listener, method_name, None)
            if method is not None:
                method(*args)

    def start_ringing(self, caller_info: CallerInfo) -> None:
        self.ringing = True
        self.caller_info = caller_info
        self._notify("on_ring_start", caller_info)

    def stop_ringing(self) -> None:
        if self.ringing:
            self.ringing = False
            self._notify("on_ring_stop")

    def far_end_answered(self) -> None:
        self._notify("on_answered")

    def far_end_hung_up(self) -> None:
        self._clear_inbound()
        self._notify("on_far_hangup")

    def call_failed(self, reason: str) -> None:
        self._notify("on_call_failed", reason)

    # -- hook control (the subscriber's side) --------------------------------

    def off_hook(self) -> None:
        """Lift the handset: answers a ringing call or starts a new one."""
        if self.hook is HookState.OFF_HOOK:
            return
        self.hook = HookState.OFF_HOOK
        self.stop_ringing()
        if self.exchange is not None:
            self.exchange.line_off_hook(self)

    def on_hook(self) -> None:
        """Hang up."""
        if self.hook is HookState.ON_HOOK:
            return
        self.hook = HookState.ON_HOOK
        self._clear_inbound()
        if self.exchange is not None:
            self.exchange.line_on_hook(self)

    def dial(self, number: str) -> None:
        """Dial a number (the line must be off hook)."""
        if self.hook is not HookState.OFF_HOOK:
            raise RuntimeError("cannot dial on hook")
        if self.exchange is not None:
            self.exchange.dial(self, number)

    def send_dtmf(self, digits: str) -> None:
        """Send mid-call touch tones through the signaling path.

        Unlike mixing tones into :meth:`send_audio` (which still works,
        and is what real handsets do), signaled DTMF crosses the
        exchange -- and any trunk -- as a signaling message and is
        regenerated in-band at the far line, surviving codecs and
        jitter concealment exactly.
        """
        if self.hook is not HookState.OFF_HOOK:
            raise RuntimeError("cannot send DTMF on hook")
        if digits and self.exchange is not None:
            self.exchange.route_dtmf(self, digits)

    # -- audio ---------------------------------------------------------------

    def send_audio(self, samples: np.ndarray) -> None:
        """Transmit a block toward the far end (dropped if no call)."""
        if self.exchange is not None and self.hook is HookState.OFF_HOOK:
            self.exchange.route_audio(self, np.asarray(samples,
                                                       dtype=np.int16))

    def deliver_audio(self, samples: np.ndarray) -> None:
        """Called by the exchange: a block arrived from the far end."""
        self._inbound.append(samples)
        self._buffered += len(samples)
        # Bound buffering (max_buffer_seconds at the exchange rate) so a
        # stalled reader does not accumulate unbounded audio; shed the
        # oldest blocks and count them.
        bound = self._max_buffered_samples()
        dropped = 0
        while self._buffered > bound and len(self._inbound) > 1:
            shed = self._inbound.popleft()
            self._buffered -= len(shed)
            dropped += 1
        if dropped and self.exchange is not None:
            self.exchange._count_dropped_blocks(dropped)

    def deliver_dtmf(self, digits: str) -> None:
        """Called by the exchange: regenerate signaled digits in-band."""
        from ..dsp.dtmf import generate_digits

        self.deliver_audio(generate_digits(digits, self._sample_rate()))

    def receive_audio(self, frames: int) -> np.ndarray:
        """The next ``frames`` received samples (silence-padded)."""
        out = np.zeros(frames, dtype=np.int16)
        filled = 0
        while filled < frames and self._inbound:
            block = self._inbound[0]
            take = min(len(block), frames - filled)
            out[filled:filled + take] = block[:take]
            if take == len(block):
                self._inbound.popleft()
            else:
                self._inbound[0] = block[take:]
            self._buffered -= take
            filled += take
        return out

    def _clear_inbound(self) -> None:
        self._inbound.clear()
        self._buffered = 0
