"""Call state machine.

One :class:`Call` tracks a two-party call through the canonical states:

    SETUP -> RINGING -> CONNECTED -> ENDED
                 \\-> FAILED (busy, bad number, no answer)

The exchange owns calls; lines refer to at most one active call each.
Timing (ring cadence, no-answer timeout, forwarding delay) is measured in
samples of the exchange clock so behaviour is deterministic under the
virtual pacer.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from .line import CallerInfo, Line


class CallState(enum.Enum):
    SETUP = "setup"
    RINGING = "ringing"
    CONNECTED = "connected"
    ENDED = "ended"
    FAILED = "failed"


_call_ids = itertools.count(1)


@dataclass
class Call:
    caller: Line
    callee: Line
    state: CallState = CallState.SETUP
    call_id: int = field(default_factory=lambda: next(_call_ids))
    #: Sample time at which ringing started (for the no-answer timeout).
    ringing_since: int = 0
    #: Original dialed number when the call was forwarded.
    forwarded_from: str | None = None
    failure_reason: str = ""

    def caller_info(self) -> CallerInfo:
        return CallerInfo(self.caller.number, self.forwarded_from)

    def other_party(self, line: Line) -> Line:
        if line is self.caller:
            return self.callee
        if line is self.callee:
            return self.caller
        raise ValueError("line %s is not on this call" % line.number)

    def involves(self, line: Line) -> bool:
        return line is self.caller or line is self.callee
