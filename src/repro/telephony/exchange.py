"""The simulated central office.

The paper's telephone devices sit on real analog lines; ours sit on this
exchange, which provides the same externally-visible behaviour: dialing,
ringing with caller ID, call forwarding, busy treatment, two-way audio,
and hangup supervision.  The exchange is ticked by the audio hub, so
every timer is sample-accurate and deterministic under the virtual
pacer.

Numbers that are not homed on this exchange can still be reachable
through a *trunk resolver* (normally a
:class:`~repro.trunk.gateway.TrunkGateway`): ``dial`` and ``_forward``
ask each registered resolver for an outbound leg -- a Line-compatible
endpoint that relays signaling and audio to the exchange where the
number really lives -- so calls, forwarding, busy treatment and hangup
supervision work unchanged across servers (docs/TELEPHONY.md).

Bookkeeping is O(1) per line: each line maps to at most one active call
(``call_for`` is a dict get), ended and failed calls are pruned into a
bounded ``recent_calls`` history, and the active set is iterated only by
the ring timers.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..obs import NULL_REGISTRY
from .call import Call, CallState
from .line import HookState, Line

#: States in which a call occupies its two endpoints.
_ACTIVE_STATES = (CallState.SETUP, CallState.RINGING, CallState.CONNECTED)


class TelephoneExchange:
    """Lines, calls, and the block-granular audio bridge between them."""

    #: Seconds of unanswered ringing before the call fails (or forwards).
    NO_ANSWER_SECONDS = 30.0
    #: Seconds of ringing before an unanswered call forwards, when the
    #: callee has ``forward_to`` set.
    FORWARD_AFTER_SECONDS = 6.0
    #: Ended/failed calls kept for tests and post-mortems.
    RECENT_CALLS = 256

    def __init__(self, sample_rate: int = 8000, metrics=None) -> None:
        self.sample_rate = sample_rate
        self.lines: dict[str, Line] = {}
        #: line -> its active call (identity keyed); the O(1) call table.
        self._active_by_line: dict[Line, Call] = {}
        #: call_id -> active call, for timer iteration.
        self._active_calls: dict[int, Call] = {}
        #: Bounded history of ended/failed calls, newest last.
        self.recent_calls: deque[Call] = deque(maxlen=self.RECENT_CALLS)
        self._sample_time = 0
        self._parties = []      # scripted SimulatedParty instances
        self._trunk_resolvers = []   # TrunkGateway-compatible objects
        self.attach_metrics(metrics if metrics is not None
                            else NULL_REGISTRY)

    # -- observability ---------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Bind (or re-bind) this exchange's instruments to a registry.

        The exchange is built before any server exists, so it starts on
        the shared null registry; the first :class:`AudioServer` that
        wraps the hub attaches its real one.
        """
        self.metrics = registry
        self._m_line_dropped = registry.counter(
            "telephony.line.dropped_blocks")
        self._m_calls_active = registry.gauge("telephony.calls.active")
        self._m_calls_placed = registry.counter("telephony.calls.placed")

    def _count_dropped_blocks(self, amount: int = 1) -> None:
        """A line's inbound buffer shed audio (called by Line)."""
        self._m_line_dropped.inc(amount)

    # -- provisioning ---------------------------------------------------------

    def add_line(self, number: str) -> Line:
        if number in self.lines:
            raise ValueError("number %s already assigned" % number)
        line = Line(number, self)
        self.lines[number] = line
        return line

    def add_party(self, party) -> None:
        """Attach a scripted remote party (ticked with the exchange)."""
        self._parties.append(party)

    def remove_party(self, party) -> None:
        if party in self._parties:
            self._parties.remove(party)

    def add_trunk_resolver(self, resolver) -> None:
        """Register a trunk gateway that can home remote numbers.

        A resolver answers ``outbound_leg(number)`` with a
        Line-compatible endpoint (or None); resolvers are consulted in
        registration order for numbers no local line owns.
        """
        if resolver not in self._trunk_resolvers:
            self._trunk_resolvers.append(resolver)

    def remove_trunk_resolver(self, resolver) -> None:
        if resolver in self._trunk_resolvers:
            self._trunk_resolvers.remove(resolver)

    def _trunk_endpoint(self, number: str) -> Line | None:
        """An outbound trunk leg for ``number``, if any gateway routes it."""
        for resolver in self._trunk_resolvers:
            leg = resolver.outbound_leg(number)
            if leg is not None:
                return leg
        return None

    def endpoint_for(self, number: str) -> Line | None:
        """The local line or a fresh trunk leg homing ``number``."""
        line = self.lines.get(number)
        if line is not None:
            return line
        return self._trunk_endpoint(number)

    # -- call-table bookkeeping ------------------------------------------------

    @property
    def calls(self) -> list[Call]:
        """Active calls plus the bounded recent history (oldest first)."""
        return list(self.recent_calls) + list(self._active_calls.values())

    @property
    def active_calls(self) -> list[Call]:
        return list(self._active_calls.values())

    def call_for(self, line: Line) -> Call | None:
        """The non-ended call this line is on, if any (O(1))."""
        return self._active_by_line.get(line)

    def _register_call(self, call: Call) -> None:
        self._active_calls[call.call_id] = call
        self._active_by_line[call.caller] = call
        self._active_by_line[call.callee] = call
        self._m_calls_active.set(len(self._active_calls))

    def _finish_call(self, call: Call, state: CallState,
                     reason: str = "") -> None:
        """Move a call out of the active table into the history."""
        call.state = state
        if reason:
            call.failure_reason = reason
        self._active_calls.pop(call.call_id, None)
        for line in (call.caller, call.callee):
            if line is not None and self._active_by_line.get(line) is call:
                del self._active_by_line[line]
        self.recent_calls.append(call)
        self._m_calls_active.set(len(self._active_calls))

    def _record_failure(self, call: Call, reason: str) -> None:
        call.state = CallState.FAILED
        call.failure_reason = reason
        self.recent_calls.append(call)

    # -- line signaling (called by Line) --------------------------------------

    def dial(self, caller: Line, number: str,
             forwarded_from: str | None = None) -> None:
        """Start a call from ``caller`` to ``number``.

        ``forwarded_from`` carries the original dialed number when this
        dial is the continuation of a forwarded (possibly trunked) call.
        """
        if self.call_for(caller) is not None:
            raise RuntimeError("line %s already on a call" % caller.number)
        callee = self.endpoint_for(number)
        call = Call(caller, callee)
        call.forwarded_from = forwarded_from
        self._m_calls_placed.inc()
        if call.callee is None:
            self._record_failure(call, "no such number")
            caller.call_failed("no such number")
            return
        if call.callee is caller or call.callee.number == caller.number:
            self._record_failure(call, "called self")
            caller.call_failed("called self")
            return
        if (call.callee.hook is HookState.OFF_HOOK
                or self.call_for(call.callee) is not None):
            self._record_failure(call, "busy")
            caller.call_failed("busy")
            return
        call.state = CallState.RINGING
        call.ringing_since = self._sample_time
        self._register_call(call)
        call.callee.start_ringing(call.caller_info())

    def line_off_hook(self, line: Line) -> None:
        """A line went off hook: answer if it was ringing."""
        call = self.call_for(line)
        if call is None:
            return
        if call.state is CallState.RINGING and line is call.callee:
            call.state = CallState.CONNECTED
            call.caller.far_end_answered()

    def line_on_hook(self, line: Line) -> None:
        """A line hung up: tear its call down and tell the other side."""
        call = self.call_for(line)
        if call is None:
            return
        other = call.other_party(line)
        self._finish_call(call, CallState.ENDED)
        if other.ringing:
            other.stop_ringing()
        else:
            other.far_end_hung_up()

    # -- trunk signaling (called by outbound trunk legs) ----------------------

    def remote_released(self, line: Line, reason: str) -> None:
        """The far exchange released a trunk call this ``line`` fronts.

        Pre-answer this is a failure (busy, no answer, trunk down) the
        caller must hear about; post-answer it is an ordinary far-end
        hangup.
        """
        call = self.call_for(line)
        if call is None:
            return
        other = call.other_party(line)
        if call.state is CallState.RINGING:
            self._finish_call(call, CallState.FAILED, reason)
            other.call_failed(reason)
        else:
            self._finish_call(call, CallState.ENDED)
            if other.ringing:
                other.stop_ringing()
            else:
                other.far_end_hung_up()

    # -- audio and in-call signaling ------------------------------------------

    def route_audio(self, sender: Line, samples: np.ndarray) -> None:
        call = self.call_for(sender)
        if call is None or call.state is not CallState.CONNECTED:
            return
        call.other_party(sender).deliver_audio(samples)

    def route_dtmf(self, sender: Line, digits: str) -> None:
        """Deliver mid-call touch-tone digits out of band.

        The digits travel the signaling path (and the trunk signaling
        channel, for remote calls) and are regenerated as in-band tones
        at the receiving line, so existing DTMF detectors hear them.
        """
        call = self.call_for(sender)
        if call is None or call.state is not CallState.CONNECTED:
            return
        call.other_party(sender).deliver_dtmf(digits)

    # -- time -----------------------------------------------------------------

    def tick(self, frames: int) -> None:
        """Advance exchange time by one block; run timers and parties."""
        self._sample_time += frames
        for call in list(self._active_calls.values()):
            if call.state is not CallState.RINGING:
                continue
            ringing_for = ((self._sample_time - call.ringing_since)
                           / self.sample_rate)
            forward_to = call.callee.forward_to
            if (forward_to is not None
                    and ringing_for >= self.FORWARD_AFTER_SECONDS):
                self._forward(call, forward_to)
            elif ringing_for >= self.NO_ANSWER_SECONDS:
                self._finish_call(call, CallState.FAILED, "no answer")
                call.callee.stop_ringing()
                call.caller.call_failed("no answer")
        # Snapshot: parties may be added concurrently (tests, tools).
        for party in list(self._parties):
            party.tick(frames)

    def _forward(self, call: Call, number: str) -> None:
        """Redirect an unanswered ringing call to the forward target.

        The target may be a local line or (through a trunk resolver) a
        number homed on another exchange; forwarding to yourself, to a
        busy line, or to a line that is already ringing all fail the
        call with "forward failed".
        """
        target = self.endpoint_for(number)
        original_callee = call.callee
        original_callee.stop_ringing()
        if (target is None or target is call.caller
                or target is original_callee
                or target.number == call.caller.number
                or target.hook is HookState.OFF_HOOK
                or self.call_for(target) is not None):
            self._finish_call(call, CallState.FAILED, "forward failed")
            call.caller.call_failed("forward failed")
            return
        if self._active_by_line.get(original_callee) is call:
            del self._active_by_line[original_callee]
        call.callee = target
        call.forwarded_from = original_callee.number
        call.ringing_since = self._sample_time
        self._active_by_line[target] = call
        target.start_ringing(call.caller_info())
