"""The simulated central office.

The paper's telephone devices sit on real analog lines; ours sit on this
exchange, which provides the same externally-visible behaviour: dialing,
ringing with caller ID, call forwarding, busy treatment, two-way audio,
and hangup supervision.  The exchange is ticked by the audio hub, so
every timer is sample-accurate and deterministic under the virtual
pacer.
"""

from __future__ import annotations

import numpy as np

from .call import Call, CallState
from .line import HookState, Line


class TelephoneExchange:
    """Lines, calls, and the block-granular audio bridge between them."""

    #: Seconds of unanswered ringing before the call fails (or forwards).
    NO_ANSWER_SECONDS = 30.0
    #: Seconds of ringing before an unanswered call forwards, when the
    #: callee has ``forward_to`` set.
    FORWARD_AFTER_SECONDS = 6.0

    def __init__(self, sample_rate: int = 8000) -> None:
        self.sample_rate = sample_rate
        self.lines: dict[str, Line] = {}
        self.calls: list[Call] = []
        self._sample_time = 0
        self._parties = []      # scripted SimulatedParty instances

    # -- provisioning ---------------------------------------------------------

    def add_line(self, number: str) -> Line:
        if number in self.lines:
            raise ValueError("number %s already assigned" % number)
        line = Line(number, self)
        self.lines[number] = line
        return line

    def add_party(self, party) -> None:
        """Attach a scripted remote party (ticked with the exchange)."""
        self._parties.append(party)

    # -- line signaling (called by Line) --------------------------------------

    def call_for(self, line: Line) -> Call | None:
        """The non-ended call this line is on, if any."""
        for call in self.calls:
            if call.involves(line) and call.state in (
                    CallState.SETUP, CallState.RINGING, CallState.CONNECTED):
                return call
        return None

    def dial(self, caller: Line, number: str) -> None:
        """Start a call from ``caller`` to ``number``."""
        if self.call_for(caller) is not None:
            raise RuntimeError("line %s already on a call" % caller.number)
        call = Call(caller, self.lines.get(number))
        if call.callee is None:
            call.state = CallState.FAILED
            call.failure_reason = "no such number"
            self.calls.append(call)
            caller.call_failed("no such number")
            return
        if call.callee is call.caller:
            call.state = CallState.FAILED
            call.failure_reason = "called self"
            self.calls.append(call)
            caller.call_failed("called self")
            return
        if (call.callee.hook is HookState.OFF_HOOK
                or self.call_for(call.callee) is not None):
            call.state = CallState.FAILED
            call.failure_reason = "busy"
            self.calls.append(call)
            caller.call_failed("busy")
            return
        call.state = CallState.RINGING
        call.ringing_since = self._sample_time
        self.calls.append(call)
        call.callee.start_ringing(call.caller_info())

    def line_off_hook(self, line: Line) -> None:
        """A line went off hook: answer if it was ringing."""
        call = self.call_for(line)
        if call is None:
            return
        if call.state is CallState.RINGING and line is call.callee:
            call.state = CallState.CONNECTED
            call.caller.far_end_answered()

    def line_on_hook(self, line: Line) -> None:
        """A line hung up: tear its call down and tell the other side."""
        call = self.call_for(line)
        if call is None:
            return
        other = call.other_party(line)
        call.state = CallState.ENDED
        if other.ringing:
            other.stop_ringing()
        else:
            other.far_end_hung_up()

    # -- audio ----------------------------------------------------------------

    def route_audio(self, sender: Line, samples: np.ndarray) -> None:
        call = self.call_for(sender)
        if call is None or call.state is not CallState.CONNECTED:
            return
        call.other_party(sender).deliver_audio(samples)

    # -- time -----------------------------------------------------------------

    def tick(self, frames: int) -> None:
        """Advance exchange time by one block; run timers and parties."""
        self._sample_time += frames
        for call in list(self.calls):
            if call.state is not CallState.RINGING:
                continue
            ringing_for = ((self._sample_time - call.ringing_since)
                           / self.sample_rate)
            forward_to = call.callee.forward_to
            if (forward_to is not None
                    and ringing_for >= self.FORWARD_AFTER_SECONDS):
                self._forward(call, forward_to)
            elif ringing_for >= self.NO_ANSWER_SECONDS:
                call.state = CallState.FAILED
                call.failure_reason = "no answer"
                call.callee.stop_ringing()
                call.caller.call_failed("no answer")
        # Snapshot: parties may be added concurrently (tests, tools).
        for party in list(self._parties):
            party.tick(frames)

    def _forward(self, call: Call, number: str) -> None:
        """Redirect an unanswered ringing call to the forward target."""
        target = self.lines.get(number)
        original_callee = call.callee
        original_callee.stop_ringing()
        if (target is None or target is call.caller
                or target.hook is HookState.OFF_HOOK
                or self.call_for(target) is not None):
            call.state = CallState.FAILED
            call.failure_reason = "forward failed"
            call.caller.call_failed("forward failed")
            return
        call.callee = target
        call.forwarded_from = original_callee.number
        call.ringing_since = self._sample_time
        target.start_ringing(call.caller_info())
