"""Scripted remote parties.

A :class:`SimulatedParty` is a person (or machine) on the far end of the
telephone network: it can place calls, answer after a few rings, speak,
press touch-tone keys, listen, and hang up.  Tests and examples script it
with a list of :class:`Step` actions; the exchange ticks it in audio
time, so its behaviour is deterministic.

Everything it hears is recorded in ``heard``, which is how tests assert
that the answering machine's greeting actually made it to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.dtmf import generate_digits
from .line import CallerInfo, HookState, Line


class Step:
    """One scripted action; subclasses implement ``run``."""

    def start(self, party: "SimulatedParty") -> None:
        pass

    def tick(self, party: "SimulatedParty", frames: int) -> bool:
        """Advance by a block; return True when the step is finished."""
        raise NotImplementedError


@dataclass
class Wait(Step):
    """Do nothing for a number of seconds."""

    seconds: float
    _remaining: int = 0

    def start(self, party: "SimulatedParty") -> None:
        self._remaining = int(self.seconds * party.sample_rate)

    def tick(self, party: "SimulatedParty", frames: int) -> bool:
        self._remaining -= frames
        return self._remaining <= 0


class WaitForSilence(Step):
    """Wait until the far end stops talking (e.g. greeting finished).

    Finishes after ``silence_seconds`` of continuous quiet, but only once
    something loud was heard first (so it synchronizes on the end of a
    prompt rather than firing immediately).
    """

    def __init__(self, silence_seconds: float = 0.5,
                 threshold: float = 200.0) -> None:
        self.silence_seconds = silence_seconds
        self.threshold = threshold
        self._silent = 0
        self._heard = False

    def start(self, party: "SimulatedParty") -> None:
        self._silent = 0
        self._heard = False

    def tick(self, party: "SimulatedParty", frames: int) -> bool:
        block = party.last_heard_block
        level = 0.0
        if block is not None and len(block):
            values = np.asarray(block, dtype=np.float64)
            level = float(np.sqrt(np.mean(values * values)))
        if level >= self.threshold:
            self._heard = True
            self._silent = 0
        else:
            self._silent += frames
        return (self._heard
                and self._silent >= self.silence_seconds * party.sample_rate)


class Speak(Step):
    """Play samples into the line (talking)."""

    def __init__(self, samples: np.ndarray) -> None:
        self.samples = np.asarray(samples, dtype=np.int16)
        self._cursor = 0

    def start(self, party: "SimulatedParty") -> None:
        self._cursor = 0

    def tick(self, party: "SimulatedParty", frames: int) -> bool:
        end = min(self._cursor + frames, len(self.samples))
        block = np.zeros(frames, dtype=np.int16)
        block[:end - self._cursor] = self.samples[self._cursor:end]
        party.line.send_audio(block)
        self._cursor = end
        return self._cursor >= len(self.samples)


class SendDtmf(Speak):
    """Press touch-tone keys (sent in-band, like a real phone)."""

    def __init__(self, digits: str, sample_rate: int = 8000) -> None:
        super().__init__(generate_digits(digits, sample_rate))
        self.digits = digits


@dataclass
class SendDtmfSignaled(Step):
    """Press touch-tone keys through the exchange signaling path.

    The digits cross the exchange (and any trunk) as signaling and are
    regenerated in-band at the far line -- see
    :meth:`~repro.telephony.line.Line.send_dtmf`.
    """

    digits: str

    def tick(self, party: "SimulatedParty", frames: int) -> bool:
        party.line.send_dtmf(self.digits)
        return True


@dataclass
class HangUp(Step):
    """Go on hook."""

    def tick(self, party: "SimulatedParty", frames: int) -> bool:
        party.line.on_hook()
        return True


@dataclass
class Dial(Step):
    """Go off hook and dial a number."""

    number: str

    def tick(self, party: "SimulatedParty", frames: int) -> bool:
        party.line.off_hook()
        party.line.dial(self.number)
        return True


class WaitForConnect(Step):
    """Wait until the dialed call is answered (or fails)."""

    def tick(self, party: "SimulatedParty", frames: int) -> bool:
        return party.connected or party.call_failed


class SimulatedParty:
    """A scripted human on a line of the simulated exchange."""

    def __init__(self, line: Line, answer_after_rings: int | None = None,
                 script: list[Step] | None = None) -> None:
        self.line = line
        self.sample_rate = line.exchange.sample_rate if line.exchange else 8000
        self.answer_after_rings = answer_after_rings
        self.script = list(script or [])
        self.heard: list[np.ndarray] = []
        self.last_heard_block: np.ndarray | None = None
        self.connected = False
        self.call_failed = False
        self.ring_count = 0
        self._script_started = False
        self._ring_timer = 0
        self._ringing = False
        line.add_listener(self)

    # -- line listener callbacks ---------------------------------------------

    def on_ring_start(self, caller_info: CallerInfo) -> None:
        self._ringing = True
        self.ring_count = 0
        self._ring_timer = 0

    def on_ring_stop(self) -> None:
        self._ringing = False

    def on_answered(self) -> None:
        self.connected = True

    def on_far_hangup(self) -> None:
        self.connected = False
        self.line.on_hook()

    def on_call_failed(self, reason: str) -> None:
        self.call_failed = True

    # -- scripting ------------------------------------------------------------

    def heard_audio(self) -> np.ndarray:
        """Everything this party has heard, concatenated."""
        if not self.heard:
            return np.zeros(0, dtype=np.int16)
        return np.concatenate(self.heard)

    def tick(self, frames: int) -> None:
        """One audio block of life."""
        # Ring counting / answering.
        if self._ringing:
            self._ring_timer += frames
            # North American cadence: one ring per 6 seconds.
            rings = 1 + self._ring_timer // (6 * self.sample_rate)
            if rings > self.ring_count:
                self.ring_count = rings
            if (self.answer_after_rings is not None
                    and self.ring_count >= self.answer_after_rings):
                self.line.off_hook()
                self.connected = True
                self._ringing = False
        # Listen.
        if self.line.hook is HookState.OFF_HOOK:
            block = self.line.receive_audio(frames)
            self.heard.append(block)
            self.last_heard_block = block
        else:
            self.last_heard_block = None
        # Run the script once the party is engaged (off hook), or
        # immediately if the script starts with a Dial.
        if self.script and not self._script_started:
            if (self.line.hook is HookState.OFF_HOOK
                    or isinstance(self.script[0], (Dial, Wait))):
                self._script_started = True
                self.script[0].start(self)
        if self._script_started and self.script:
            step = self.script[0]
            if step.tick(self, frames):
                self.script.pop(0)
                if self.script:
                    self.script[0].start(self)
