"""The audio manager client (paper section 4.3)."""

from .manager import AudioManager, Policy, TelephonePriorityPolicy

__all__ = ["AudioManager", "Policy", "TelephonePriorityPolicy"]
