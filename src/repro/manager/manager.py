"""The audio manager: contention policy as a client.

"Because the audio protocol allows multiple clients to access the audio
hardware simultaneously, an application similar to a window manager is
needed to enforce contention policy.  We call this the audio manager."
(paper section 4.3)

The manager enables redirection (SetRedirect), after which every other
client's map and restack requests arrive as MAP_REQUEST /
RESTACK_REQUEST events.  A pluggable :class:`Policy` decides what to do;
the protocol "specifies sensible defaults in the absence of an audio
manager" (everything is honored), so the simplest manager changes
nothing and a policy only has to express what it wants to forbid or
reorder.
"""

from __future__ import annotations

import threading

from ..alib.api import AudioClient
from ..protocol import events as ev
from ..protocol.events import Event
from ..protocol.types import EventCode, EventMask, StackPosition
from ..server.resources import DEVICE_LOUD_ID


class Policy:
    """Decides the fate of redirected requests.  Default: honor all."""

    def on_map_request(self, manager: "AudioManager",
                       event: Event) -> tuple[bool, StackPosition]:
        """Return (honor, position) for a redirected map."""
        return True, StackPosition.TOP

    def on_restack_request(self, manager: "AudioManager",
                           event: Event) -> tuple[bool, StackPosition]:
        requested = event.args.get(ev.ARG_POSITION)
        position = (StackPosition(int(requested))
                    if requested is not None else StackPosition.TOP)
        return True, position


class TelephonePriorityPolicy(Policy):
    """Telephony outranks desktop playback.

    Applications declare their ambient domain preference with a DOMAIN
    property on their root LOUD (the paper's example, section 5.8);
    LOUDs claiming the telephone domain map to the top of the active
    stack, everything else maps to the bottom while any telephone LOUD
    is up.
    """

    def __init__(self) -> None:
        self._telephone_louds: set[int] = set()

    def on_map_request(self, manager: "AudioManager",
                       event: Event) -> tuple[bool, StackPosition]:
        domain = manager.client.get_property(event.resource, "DOMAIN")
        if domain == "telephone":
            self._telephone_louds.add(event.resource)
            return True, StackPosition.TOP
        if self._telephone_louds:
            return True, StackPosition.BOTTOM
        return True, StackPosition.TOP


class AudioManager:
    """The manager client: event loop + policy dispatch."""

    def __init__(self, client: AudioClient,
                 policy: Policy | None = None) -> None:
        self.client = client
        self.policy = policy or Policy()
        self.handled = 0
        self._running = False
        self._thread: threading.Thread | None = None
        client.set_redirect(True)
        client.select_events(DEVICE_LOUD_ID, EventMask.REDIRECT)
        client.sync()

    def handle_event(self, event: Event) -> bool:
        """Process one event; returns True if it was a redirect."""
        if event.code is EventCode.MAP_REQUEST:
            honor, position = self.policy.on_map_request(self, event)
            self.client.allow_map(event.resource, honor)
            if honor and position is StackPosition.BOTTOM:
                self.client.allow_restack(event.resource, position)
            self.handled += 1
            return True
        if event.code is EventCode.RESTACK_REQUEST:
            honor, position = self.policy.on_restack_request(self, event)
            self.client.allow_restack(event.resource, position, honor)
            self.handled += 1
            return True
        return False

    def run_once(self, timeout: float = 1.0) -> bool:
        """Wait for and handle one redirected request."""
        event = self.client.wait_for_event(
            lambda e: e.code in (EventCode.MAP_REQUEST,
                                 EventCode.RESTACK_REQUEST),
            timeout=timeout)
        if event is None:
            return False
        return self.handle_event(event)

    def start(self) -> None:
        """Run the manager loop in a background thread."""
        if self._running:
            return
        self._running = True
        self._thread = threading.Thread(target=self._loop,
                                        name="audio-manager", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._running = False
        self.client.set_redirect(False)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while self._running:
            self.run_once(timeout=0.2)
