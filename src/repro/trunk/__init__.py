"""Inter-server telephony trunks: federated exchanges over TCP.

A :class:`TrunkGateway` attached to a server's
:class:`~repro.telephony.exchange.TelephoneExchange` makes numbers homed
on *other* servers dialable here: a static prefix route table maps
numbers to peer gateways, signaling (SETUP/ALERTING/ANSWER/RELEASE/DTMF)
and sequence-numbered mu-law bearer audio travel a compact
length-prefixed wire format, and remote calls surface locally as
Line-compatible endpoints so every exchange semantic works unchanged.

The mesh plane (minor 2) removes the hand-wiring: gateways find each
other through a :class:`MeshRegistry`, learn the fleet's numbering plan
from ROUTE_ADVERT frames into a :class:`RouteTable`, and tandem-switch
calls across intermediate nodes.  See docs/TELEPHONY.md for the model
and failure semantics.
"""

from .discovery import (
    MeshDiscovery,
    MeshRegistry,
    PeerRecord,
    RegistryProtocolError,
)
from .gateway import (
    InboundLeg,
    MeshPeer,
    RemoteLine,
    TrunkGateway,
    TrunkRoute,
    parse_route,
)
from .jitter import JitterBuffer
from .link import TrunkLink
from .routing import DEFAULT_MAX_HOPS, RouteTable
from .wire import (
    BATCH_MIN_MINOR,
    MESH_MIN_MINOR,
    UNREACHABLE_HOPS,
    FrameStream,
    FrameType,
    Handshake,
    TrunkFrame,
    TrunkProtocolError,
    decode_frame,
    encode_audio_batch,
    read_frame,
)

__all__ = [
    "BATCH_MIN_MINOR", "DEFAULT_MAX_HOPS", "FrameStream", "FrameType",
    "Handshake", "InboundLeg", "JitterBuffer", "MESH_MIN_MINOR",
    "MeshDiscovery", "MeshPeer", "MeshRegistry", "PeerRecord",
    "RegistryProtocolError", "RemoteLine", "RouteTable", "TrunkFrame",
    "TrunkGateway", "TrunkLink", "TrunkProtocolError", "TrunkRoute",
    "UNREACHABLE_HOPS", "decode_frame", "encode_audio_batch",
    "parse_route", "read_frame",
]
