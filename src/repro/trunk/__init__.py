"""Inter-server telephony trunks: federated exchanges over TCP.

A :class:`TrunkGateway` attached to a server's
:class:`~repro.telephony.exchange.TelephoneExchange` makes numbers homed
on *other* servers dialable here: a static prefix route table maps
numbers to peer gateways, signaling (SETUP/ALERTING/ANSWER/RELEASE/DTMF)
and sequence-numbered mu-law bearer audio travel a compact
length-prefixed wire format, and remote calls surface locally as
Line-compatible endpoints so every exchange semantic works unchanged.
See docs/TELEPHONY.md for the model and failure semantics.
"""

from .gateway import (
    InboundLeg,
    RemoteLine,
    TrunkGateway,
    TrunkRoute,
    parse_route,
)
from .jitter import JitterBuffer
from .link import TrunkLink
from .wire import (
    BATCH_MIN_MINOR,
    FrameStream,
    FrameType,
    Handshake,
    TrunkFrame,
    TrunkProtocolError,
    decode_frame,
    encode_audio_batch,
    read_frame,
)

__all__ = [
    "BATCH_MIN_MINOR", "FrameStream", "FrameType", "Handshake",
    "InboundLeg", "JitterBuffer", "RemoteLine", "TrunkFrame",
    "TrunkGateway", "TrunkLink", "TrunkProtocolError", "TrunkRoute",
    "decode_frame", "encode_audio_batch", "parse_route", "read_frame",
]
