"""The trunk wire format: how two exchanges talk to each other.

One trunk link is a TCP byte stream opened with a fixed-size versioned
handshake, then carrying length-prefixed frames in both directions.
Frames split into *signaling* (call control: SETUP, ALERTING, ANSWER,
RELEASE, DTMF) and *bearer* (AUDIO: sequence-numbered blocks of G.711
mu-law, reusing the table-driven codec from ``repro.dsp.encodings``).
The grammar is deliberately tiny -- small enough to hold in your head
while reading a packet capture:

    handshake := magic(4) u16 major u16 minor u32 sample_rate string name
    frame     := u32 length  u8 type  payload[length - 1]

    SETUP     := u32 call_id  string number  string caller_id
                 string forwarded_from      ("" = not forwarded)
    ALERTING  := u32 call_id
    ANSWER    := u32 call_id
    RELEASE   := u32 call_id  string reason
    DTMF      := u32 call_id  string digits
    AUDIO     := u32 call_id  u32 seq  blob mulaw_payload
    PING      := u32 token
    PONG      := u32 token

Call ids are allocated by the endpoint that *originates* the call; the
endpoint that initiated the TCP connection uses odd ids and the acceptor
even ids, so simultaneous calls in both directions can never collide.

Marshalling reuses the :class:`~repro.protocol.wire.Writer` /
:class:`~repro.protocol.wire.Reader` primitives of the client protocol
(same endianness, same string/blob encoding); framing errors raise
:class:`TrunkProtocolError` so a bad peer drops the link instead of
crashing the gateway.
"""

from __future__ import annotations

import enum
import socket
import struct
from dataclasses import dataclass

from ..protocol.wire import Reader, WireFormatError, Writer, recv_exact

#: First bytes on the wire, both directions.
TRUNK_MAGIC = b"RTRK"
TRUNK_MAJOR = 1
TRUNK_MINOR = 0

#: Upper bound on one frame's encoded size; anything bigger is a
#: protocol violation (an AUDIO block at 8 kHz is ~160 bytes).
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct("<I")
_HANDSHAKE_HEAD = struct.Struct("<4sHHI")


class TrunkProtocolError(Exception):
    """The peer violated the trunk wire format or version contract."""


class FrameType(enum.IntEnum):
    SETUP = 1
    ALERTING = 2
    ANSWER = 3
    RELEASE = 4
    DTMF = 5
    AUDIO = 6
    PING = 7
    PONG = 8


#: Frame types that carry call signaling (everything but bearer/keepalive).
SIGNALING_TYPES = frozenset({
    FrameType.SETUP, FrameType.ALERTING, FrameType.ANSWER,
    FrameType.RELEASE, FrameType.DTMF,
})


@dataclass(frozen=True)
class TrunkFrame:
    """One decoded trunk frame; unused fields stay at their defaults."""

    type: FrameType
    call_id: int = 0
    number: str = ""
    caller_id: str = ""
    forwarded_from: str = ""
    reason: str = ""
    digits: str = ""
    seq: int = 0
    payload: bytes = b""
    token: int = 0

    def encode(self) -> bytes:
        writer = Writer()
        writer.u8(int(self.type))
        if self.type in (FrameType.PING, FrameType.PONG):
            writer.u32(self.token)
        else:
            writer.u32(self.call_id)
            if self.type is FrameType.SETUP:
                writer.string(self.number)
                writer.string(self.caller_id)
                writer.string(self.forwarded_from)
            elif self.type is FrameType.RELEASE:
                writer.string(self.reason)
            elif self.type is FrameType.DTMF:
                writer.string(self.digits)
            elif self.type is FrameType.AUDIO:
                writer.u32(self.seq)
                writer.blob(self.payload)
        body = writer.getvalue()
        return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> TrunkFrame:
    """Decode one frame body (everything after the length prefix)."""
    reader = Reader(body)
    try:
        raw_type = reader.u8()
        try:
            frame_type = FrameType(raw_type)
        except ValueError:
            raise TrunkProtocolError("unknown frame type %d" % raw_type)
        if frame_type in (FrameType.PING, FrameType.PONG):
            frame = TrunkFrame(frame_type, token=reader.u32())
        else:
            call_id = reader.u32()
            if frame_type is FrameType.SETUP:
                frame = TrunkFrame(frame_type, call_id,
                                   number=reader.string(),
                                   caller_id=reader.string(),
                                   forwarded_from=reader.string())
            elif frame_type is FrameType.RELEASE:
                frame = TrunkFrame(frame_type, call_id,
                                   reason=reader.string())
            elif frame_type is FrameType.DTMF:
                frame = TrunkFrame(frame_type, call_id,
                                   digits=reader.string())
            elif frame_type is FrameType.AUDIO:
                frame = TrunkFrame(frame_type, call_id, seq=reader.u32(),
                                   payload=reader.blob())
            else:
                frame = TrunkFrame(frame_type, call_id)
        reader.expect_end()
    except WireFormatError as exc:
        raise TrunkProtocolError(str(exc)) from None
    return frame


def read_frame(sock: socket.socket) -> TrunkFrame:
    """Read one length-prefixed frame from a socket (blocking)."""
    (length,) = _LENGTH.unpack(recv_exact(sock, _LENGTH.size))
    if length == 0 or length > MAX_FRAME_BYTES:
        raise TrunkProtocolError("bad frame length %d" % length)
    return decode_frame(recv_exact(sock, length))


@dataclass(frozen=True)
class Handshake:
    """The fixed preamble each side sends when a link opens.

    ``sample_rate`` guards bearer compatibility: audio frames carry raw
    mu-law at the sender's exchange rate, so both ends must agree before
    any call is placed.
    """

    name: str = ""
    major: int = TRUNK_MAJOR
    minor: int = TRUNK_MINOR
    sample_rate: int = 8000

    def encode(self) -> bytes:
        head = _HANDSHAKE_HEAD.pack(TRUNK_MAGIC, self.major, self.minor,
                                    self.sample_rate)
        return head + Writer().string(self.name).getvalue()

    @classmethod
    def read_from(cls, sock: socket.socket) -> "Handshake":
        head = recv_exact(sock, _HANDSHAKE_HEAD.size)
        magic, major, minor, sample_rate = _HANDSHAKE_HEAD.unpack(head)
        if magic != TRUNK_MAGIC:
            raise TrunkProtocolError("bad trunk magic %r" % magic)
        (name_len,) = _LENGTH.unpack(recv_exact(sock, _LENGTH.size))
        if name_len > 1024:
            raise TrunkProtocolError("oversized peer name (%d bytes)"
                                     % name_len)
        try:
            name = recv_exact(sock, name_len).decode("utf-8")
        except UnicodeDecodeError:
            raise TrunkProtocolError("undecodable peer name") from None
        return cls(name=name, major=major, minor=minor,
                   sample_rate=sample_rate)

    def compatible_with(self, other: "Handshake") -> str | None:
        """None if the peers can interoperate, else the refusal reason."""
        if self.major != other.major:
            return ("trunk protocol version mismatch: %d vs %d"
                    % (self.major, other.major))
        if self.sample_rate != other.sample_rate:
            return ("sample rate mismatch: %d vs %d Hz"
                    % (self.sample_rate, other.sample_rate))
        return None
