"""The trunk wire format: how two exchanges talk to each other.

One trunk link is a TCP byte stream opened with a fixed-size versioned
handshake, then carrying length-prefixed frames in both directions.
Frames split into *signaling* (call control: SETUP, ALERTING, ANSWER,
RELEASE, DTMF) and *bearer* (AUDIO: sequence-numbered blocks of G.711
mu-law, reusing the table-driven codec from ``repro.dsp.encodings``).
The grammar is deliberately tiny -- small enough to hold in your head
while reading a packet capture:

    handshake := magic(4) u16 major u16 minor u32 sample_rate string name
    frame     := u32 length  u8 type  payload[length - 1]

    SETUP     := u32 call_id  string number  string caller_id
                 string forwarded_from      ("" = not forwarded)
    ALERTING  := u32 call_id
    ANSWER    := u32 call_id
    RELEASE   := u32 call_id  string reason
    DTMF      := u32 call_id  string digits
    AUDIO     := u32 call_id  u32 seq  blob mulaw_payload
    PING      := u32 token
    PONG      := u32 token
    AUDIO_BATCH := u32 count
                   count * (u32 call_id  u32 seq  blob mulaw_payload)
    ROUTE_ADVERT := u16 count
                    count * (string prefix  string origin
                             u16 hops  u32 seq)
    SETUP2    := u32 call_id  string number  string caller_id
                 string forwarded_from  u8 hops
                 u8 via_count  via_count * string via_node

Call ids are allocated by the endpoint that *originates* the call; the
endpoint that initiated the TCP connection uses odd ids and the acceptor
even ids, so simultaneous calls in both directions can never collide.

``AUDIO_BATCH`` (minor version 1) is the bearer-plane fast path: one
flush window's worth of *every* call's audio packed into a single
length-prefixed frame, so a 256-call link costs one frame (and one
``sendall``) per window instead of 256.  The batch is negotiated at
handshake time -- a peer announcing ``minor < 1`` keeps receiving plain
per-frame ``AUDIO``, which stays both the compatibility path and the
equivalence oracle for the batched one.

``ROUTE_ADVERT`` and ``SETUP2`` (minor version 2) are the mesh routing
plane (docs/TELEPHONY.md, "Mesh routing").  An advert entry announces
that ``origin`` can be reached through the sender at ``hops`` trunk
hops; hop count :data:`UNREACHABLE_HOPS` withdraws a previously
advertised route.  ``SETUP2`` is SETUP plus the tandem-switching
context: ``hops`` counts the trunk links the call has already crossed
and ``via`` lists the gateways it has left, so a node that finds its
own name in ``via`` refuses the loop.  Both are negotiated exactly like
AUDIO_BATCH: a peer announcing ``minor < 2`` simply never sees them and
keeps interoperating with plain SETUP and static routes.

Marshalling reuses the :class:`~repro.protocol.wire.Writer` /
:class:`~repro.protocol.wire.Reader` primitives of the client protocol
(same endianness, same string/blob encoding); framing errors raise
:class:`TrunkProtocolError` so a bad peer drops the link instead of
crashing the gateway.
"""

from __future__ import annotations

import enum
import socket
import struct
from dataclasses import dataclass

from ..protocol.wire import ConnectionClosed, Reader, WireFormatError, \
    Writer, recv_exact

#: First bytes on the wire, both directions.
TRUNK_MAGIC = b"RTRK"
TRUNK_MAJOR = 1
TRUNK_MINOR = 2

#: Lowest minor version whose speaker understands AUDIO_BATCH frames.
BATCH_MIN_MINOR = 1

#: Lowest minor version whose speaker understands the mesh routing
#: frames (ROUTE_ADVERT, SETUP2).
MESH_MIN_MINOR = 2

#: Upper bound on one frame's encoded size; anything bigger is a
#: protocol violation (an AUDIO block at 8 kHz is ~160 bytes, and a
#: 256-call AUDIO_BATCH stays well under 64 KiB).
MAX_FRAME_BYTES = 1 << 20

#: Upper bound on payloads packed into one AUDIO_BATCH; a corrupted
#: count field must not drive an unbounded allocation loop.
MAX_BATCH_ENTRIES = 4096

#: Upper bound on route entries packed into one ROUTE_ADVERT frame;
#: bigger tables are chunked across frames by the sender.
MAX_ADVERT_ENTRIES = 1024

#: Upper bound on the SETUP2 via list (the loop-prevention hop trail);
#: real paths are bounded far lower by the gateway's max hop count.
MAX_VIA_NODES = 64

#: ROUTE_ADVERT hop count that *withdraws* the (prefix, origin) route
#: instead of announcing it.
UNREACHABLE_HOPS = 0xFFFF

_LENGTH = struct.Struct("<I")
_HANDSHAKE_HEAD = struct.Struct("<4sHHI")

# Prebound structs for the hot bearer encoders (PR 2 style): the whole
# frame header in one pack instead of a Writer's append-per-field.
_AUDIO_HEAD = struct.Struct("<IBIII")      # length  type  call_id  seq  len
_BATCH_HEAD = struct.Struct("<IBI")        # length  type  count
_ENTRY_HEAD = struct.Struct("<III")        # call_id  seq  len


class TrunkProtocolError(Exception):
    """The peer violated the trunk wire format or version contract."""


class FrameType(enum.IntEnum):
    SETUP = 1
    ALERTING = 2
    ANSWER = 3
    RELEASE = 4
    DTMF = 5
    AUDIO = 6
    PING = 7
    PONG = 8
    AUDIO_BATCH = 9
    ROUTE_ADVERT = 10
    SETUP2 = 11


#: Frame types that carry call signaling (everything but bearer/keepalive).
SIGNALING_TYPES = frozenset({
    FrameType.SETUP, FrameType.ALERTING, FrameType.ANSWER,
    FrameType.RELEASE, FrameType.DTMF, FrameType.SETUP2,
})


@dataclass(frozen=True)
class TrunkFrame:
    """One decoded trunk frame; unused fields stay at their defaults."""

    type: FrameType
    call_id: int = 0
    number: str = ""
    caller_id: str = ""
    forwarded_from: str = ""
    reason: str = ""
    digits: str = ""
    seq: int = 0
    payload: bytes = b""
    token: int = 0
    #: AUDIO_BATCH only: ``(call_id, seq, mulaw_payload)`` per call.
    entries: tuple = ()
    #: SETUP2 only: trunk hops already crossed, and the names of the
    #: gateways the call has left (oldest first) for loop prevention.
    hops: int = 0
    via: tuple = ()
    #: ROUTE_ADVERT only: ``(prefix, origin, hops, seq)`` per route;
    #: hops == UNREACHABLE_HOPS withdraws the route.
    adverts: tuple = ()

    def encode(self) -> bytes:
        if self.type is FrameType.AUDIO:
            # Bearer fast path: one preallocated buffer, one prebound
            # header pack -- no Writer object, no chunk concatenation.
            payload = self.payload
            buffer = bytearray(_AUDIO_HEAD.size + len(payload))
            _AUDIO_HEAD.pack_into(buffer, 0, 13 + len(payload),
                                  int(FrameType.AUDIO), self.call_id,
                                  self.seq, len(payload))
            buffer[_AUDIO_HEAD.size:] = payload
            return bytes(buffer)
        if self.type is FrameType.AUDIO_BATCH:
            return bytes(encode_audio_batch(self.entries))
        writer = Writer()
        writer.u8(int(self.type))
        if self.type in (FrameType.PING, FrameType.PONG):
            writer.u32(self.token)
        elif self.type is FrameType.ROUTE_ADVERT:
            writer.u16(len(self.adverts))
            for prefix, origin, hops, seq in self.adverts:
                writer.string(prefix)
                writer.string(origin)
                writer.u16(hops)
                writer.u32(seq)
        else:
            writer.u32(self.call_id)
            if self.type in (FrameType.SETUP, FrameType.SETUP2):
                writer.string(self.number)
                writer.string(self.caller_id)
                writer.string(self.forwarded_from)
                if self.type is FrameType.SETUP2:
                    writer.u8(self.hops)
                    writer.u8(len(self.via))
                    for node in self.via:
                        writer.string(node)
            elif self.type is FrameType.RELEASE:
                writer.string(self.reason)
            elif self.type is FrameType.DTMF:
                writer.string(self.digits)
        body = writer.getvalue()
        return _LENGTH.pack(len(body)) + body

    def encode_into(self, out: bytearray) -> None:
        """Append this frame's wire bytes to a reused sweep buffer."""
        if self.type is FrameType.AUDIO:
            payload = self.payload
            out += _AUDIO_HEAD.pack(13 + len(payload),
                                    int(FrameType.AUDIO), self.call_id,
                                    self.seq, len(payload))
            out += payload
        elif self.type is FrameType.AUDIO_BATCH:
            encode_audio_batch_into(out, self.entries)
        else:
            out += self.encode()


def encode_audio_batch(entries) -> bytearray:
    """One AUDIO_BATCH frame packing every entry's bearer payload.

    Encodes into a single exactly-sized preallocated ``bytearray`` with
    prebound structs: one allocation per flush window, however many
    calls ride it.  Entries are ``(call_id, seq, payload)`` where the
    payload is any bytes-like mu-law block.
    """
    size = _BATCH_HEAD.size
    for _call_id, _seq, payload in entries:
        size += _ENTRY_HEAD.size + len(payload)
    buffer = bytearray(size)
    _BATCH_HEAD.pack_into(buffer, 0, size - _LENGTH.size,
                          int(FrameType.AUDIO_BATCH), len(entries))
    pos = _BATCH_HEAD.size
    for call_id, seq, payload in entries:
        length = len(payload)
        _ENTRY_HEAD.pack_into(buffer, pos, call_id, seq, length)
        pos += _ENTRY_HEAD.size
        buffer[pos:pos + length] = payload
        pos += length
    return buffer


def encode_audio_batch_into(out: bytearray, entries) -> None:
    """Append one AUDIO_BATCH frame to a reused sweep buffer."""
    size = 5    # u8 type + u32 count
    for _call_id, _seq, payload in entries:
        size += _ENTRY_HEAD.size + len(payload)
    out += _BATCH_HEAD.pack(size, int(FrameType.AUDIO_BATCH), len(entries))
    for call_id, seq, payload in entries:
        out += _ENTRY_HEAD.pack(call_id, seq, len(payload))
        out += payload


def decode_frame(body: bytes) -> TrunkFrame:
    """Decode one frame body (everything after the length prefix)."""
    reader = Reader(body)
    try:
        raw_type = reader.u8()
        try:
            frame_type = FrameType(raw_type)
        except ValueError:
            raise TrunkProtocolError("unknown frame type %d" % raw_type)
        if frame_type in (FrameType.PING, FrameType.PONG):
            frame = TrunkFrame(frame_type, token=reader.u32())
        elif frame_type is FrameType.ROUTE_ADVERT:
            count = reader.u16()
            if count > MAX_ADVERT_ENTRIES:
                raise TrunkProtocolError(
                    "ROUTE_ADVERT of %d entries too large" % count)
            adverts = []
            for _ in range(count):
                prefix = reader.string()
                origin = reader.string()
                adverts.append((prefix, origin, reader.u16(),
                                reader.u32()))
            frame = TrunkFrame(frame_type, adverts=tuple(adverts))
        elif frame_type is FrameType.AUDIO_BATCH:
            count = reader.u32()
            if count > MAX_BATCH_ENTRIES:
                raise TrunkProtocolError(
                    "AUDIO_BATCH of %d entries too large" % count)
            entries = []
            for _ in range(count):
                entry_call = reader.u32()
                entry_seq = reader.u32()
                entries.append((entry_call, entry_seq, reader.blob()))
            frame = TrunkFrame(frame_type, entries=tuple(entries))
        else:
            call_id = reader.u32()
            if frame_type is FrameType.SETUP:
                frame = TrunkFrame(frame_type, call_id,
                                   number=reader.string(),
                                   caller_id=reader.string(),
                                   forwarded_from=reader.string())
            elif frame_type is FrameType.SETUP2:
                number = reader.string()
                caller_id = reader.string()
                forwarded_from = reader.string()
                hops = reader.u8()
                via_count = reader.u8()
                if via_count > MAX_VIA_NODES:
                    raise TrunkProtocolError(
                        "SETUP2 via list of %d nodes too long" % via_count)
                via = tuple(reader.string() for _ in range(via_count))
                frame = TrunkFrame(frame_type, call_id, number=number,
                                   caller_id=caller_id,
                                   forwarded_from=forwarded_from,
                                   hops=hops, via=via)
            elif frame_type is FrameType.RELEASE:
                frame = TrunkFrame(frame_type, call_id,
                                   reason=reader.string())
            elif frame_type is FrameType.DTMF:
                frame = TrunkFrame(frame_type, call_id,
                                   digits=reader.string())
            elif frame_type is FrameType.AUDIO:
                frame = TrunkFrame(frame_type, call_id, seq=reader.u32(),
                                   payload=reader.blob())
            else:
                frame = TrunkFrame(frame_type, call_id)
        reader.expect_end()
    except WireFormatError as exc:
        raise TrunkProtocolError(str(exc)) from None
    return frame


def read_frame(sock: socket.socket) -> TrunkFrame:
    """Read one length-prefixed frame from a socket (blocking).

    Two syscalls per frame -- the pre-batch reader, kept as the old-peer
    compatibility path and the equivalence oracle for
    :class:`FrameStream`.
    """
    (length,) = _LENGTH.unpack(recv_exact(sock, _LENGTH.size))
    if length == 0 or length > MAX_FRAME_BYTES:
        raise TrunkProtocolError("bad frame length %d" % length)
    return decode_frame(recv_exact(sock, length))


class FrameStream:
    """Buffered incremental trunk framer: amortized ~0 syscalls/frame.

    The same move :meth:`~repro.protocol.wire.MessageStream.read_available`
    makes for the client protocol, applied to the trunk: one large
    ``recv`` lands however many frames the peer's last flush carried,
    they are parsed out of the buffer in one pass, and a frame torn
    across TCP segments stays buffered until a later read completes it.
    Byte-for-byte equivalent to looping :func:`read_frame` however the
    stream is split (tests/test_protocol_fuzz.py proves the property).
    """

    __slots__ = ("sock", "recvs", "_buffer")

    #: One recv's worth; comfortably bigger than the largest flush
    #: window a 256-call link emits per 20 ms tick.
    RECV_BYTES = 1 << 16

    def __init__(self, sock) -> None:
        self.sock = sock
        self.recvs = 0          # syscall tally, folded into trunk.link.*
        self._buffer = bytearray()

    def read_frames(self, limit: int = 1024) -> list[TrunkFrame]:
        """At least one frame (blocking), plus everything already here."""
        frames = self._drain(limit)
        while not frames:
            chunk = self.sock.recv(self.RECV_BYTES)
            self.recvs += 1
            if not chunk:
                raise ConnectionClosed("peer closed the trunk link")
            self._buffer += chunk
            frames = self._drain(limit)
        return frames

    def _drain(self, limit: int) -> list[TrunkFrame]:
        buffer = self._buffer
        size = len(buffer)
        pos = 0
        frames: list[TrunkFrame] = []
        while len(frames) < limit and size - pos >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(buffer, pos)
            if length == 0 or length > MAX_FRAME_BYTES:
                raise TrunkProtocolError("bad frame length %d" % length)
            body_start = pos + _LENGTH.size
            if size - body_start < length:
                break
            frames.append(decode_frame(
                bytes(buffer[body_start:body_start + length])))
            pos = body_start + length
        if pos:
            del buffer[:pos]
        return frames


@dataclass(frozen=True)
class Handshake:
    """The fixed preamble each side sends when a link opens.

    ``sample_rate`` guards bearer compatibility: audio frames carry raw
    mu-law at the sender's exchange rate, so both ends must agree before
    any call is placed.
    """

    name: str = ""
    major: int = TRUNK_MAJOR
    minor: int = TRUNK_MINOR
    sample_rate: int = 8000

    def encode(self) -> bytes:
        head = _HANDSHAKE_HEAD.pack(TRUNK_MAGIC, self.major, self.minor,
                                    self.sample_rate)
        return head + Writer().string(self.name).getvalue()

    @classmethod
    def read_from(cls, sock: socket.socket) -> "Handshake":
        head = recv_exact(sock, _HANDSHAKE_HEAD.size)
        magic, major, minor, sample_rate = _HANDSHAKE_HEAD.unpack(head)
        if magic != TRUNK_MAGIC:
            raise TrunkProtocolError("bad trunk magic %r" % magic)
        (name_len,) = _LENGTH.unpack(recv_exact(sock, _LENGTH.size))
        if name_len > 1024:
            raise TrunkProtocolError("oversized peer name (%d bytes)"
                                     % name_len)
        try:
            name = recv_exact(sock, name_len).decode("utf-8")
        except UnicodeDecodeError:
            raise TrunkProtocolError("undecodable peer name") from None
        return cls(name=name, major=major, minor=minor,
                   sample_rate=sample_rate)

    def compatible_with(self, other: "Handshake") -> str | None:
        """None if the peers can interoperate, else the refusal reason."""
        if self.major != other.major:
            return ("trunk protocol version mismatch: %d vs %d"
                    % (self.major, other.major))
        if self.sample_rate != other.sample_rate:
            return ("sample rate mismatch: %d vs %d Hz"
                    % (self.sample_rate, other.sample_rate))
        return None
