"""One live trunk connection: socket, pump threads, keepalives.

A :class:`TrunkLink` owns an already-handshaken socket and two threads:

* the **reader** parses frames off the wire into an inbound deque that
  the gateway drains from the exchange tick (signaling and bearer are
  applied under the exchange's clock, never from the socket thread);
  frames arrive through a buffered incremental
  :class:`~repro.trunk.wire.FrameStream`, so a frame costs amortized
  ~0 syscalls instead of the old two blocking ``recv``\\ s;
* the **writer** drains the outbound queue in *sweeps* -- one blocking
  ``get`` plus a ``get_nowait`` run -- encodes the whole sweep into one
  reused buffer (consecutive bearer frames collapse into a single
  ``AUDIO_BATCH`` when the peer negotiated it), and emits one
  ``sendall`` per sweep.  It falls back to the exact pre-batch
  frame-per-``sendall`` loop for old-minor peers, which keeps that path
  alive as the equivalence oracle.  PING keepalives go out when the
  queue idles.

The gateway's tick thread runs inside the audio block cycle, under the
server's topology lock -- so the link never does socket I/O on behalf of
a caller: ``send`` is an enqueue, and a peer that stops reading costs at
most the bounded outbound queue (oldest AUDIO frames are shed first;
signaling is never dropped).  Liveness is the reader's last-received
timestamp; the gateway declares the link dead when it goes stale.
"""

from __future__ import annotations

import logging
import queue
import socket
import threading
import time
from collections import deque

from ..protocol.wire import ConnectionClosed, set_nodelay
from .wire import (
    BATCH_MIN_MINOR,
    FrameStream,
    FrameType,
    Handshake,
    MESH_MIN_MINOR,
    TrunkFrame,
    TrunkProtocolError,
    encode_audio_batch_into,
    read_frame,
)

log = logging.getLogger(__name__)

#: Outbound frames queued before AUDIO shedding starts.  ~256 blocks is
#: five seconds of bearer at 20 ms blocks -- far beyond any healthy
#: link's in-flight window.
DEFAULT_OUTBOUND_BOUND = 256

#: Seconds of writer idleness between PING keepalives.
DEFAULT_KEEPALIVE_INTERVAL = 1.0

#: Missed-keepalive multiple after which the gateway calls a link dead.
KEEPALIVE_TIMEOUT_FACTOR = 3.0

#: Upper bound on frames drained per writer sweep; keeps one sweep's
#: encode buffer (and the latency of whatever queued behind it) bounded.
MAX_WRITE_SWEEP = 512

#: Keepalive bytes, prebuilt once (token 0 is fine for liveness).
_PING_BYTES = TrunkFrame(FrameType.PING).encode()


class TrunkLink:
    """A handshaken trunk connection being pumped in both directions."""

    def __init__(self, sock: socket.socket, peer: Handshake, *,
                 initiated: bool, name: str = "",
                 keepalive_interval: float = DEFAULT_KEEPALIVE_INTERVAL,
                 outbound_bound: int = DEFAULT_OUTBOUND_BOUND,
                 batching: bool | None = None,
                 mesh: bool | None = None) -> None:
        self.sock = sock
        self.peer = peer
        #: True when this endpoint opened the TCP connection; initiators
        #: allocate odd call ids, acceptors even (see trunk/wire.py).
        self.initiated = initiated
        self.name = name or peer.name
        self.keepalive_interval = keepalive_interval
        self.keepalive_timeout = (KEEPALIVE_TIMEOUT_FACTOR
                                  * keepalive_interval)
        self.outbound_bound = outbound_bound
        #: Negotiated at handshake: both ends must speak minor >= 1 for
        #: AUDIO_BATCH; an old-minor peer gets per-frame AUDIO through
        #: the pre-batch writer loop, byte-compatible with PR 5.
        self.batching = (peer.minor >= BATCH_MIN_MINOR if batching is None
                         else batching)
        #: Negotiated the same way at minor >= 2: whether this link may
        #: carry ROUTE_ADVERT and SETUP2 frames.  An old-minor peer
        #: keeps classic SETUP and learns nothing -- static interop.
        self.mesh = (peer.minor >= MESH_MIN_MINOR if mesh is None
                     else mesh)
        self.alive = True
        self.last_rx = time.monotonic()
        # Initiators allocate odd call ids, acceptors even, so calls
        # originated simultaneously at both ends can never collide.
        self._next_call_id = 1 if initiated else 2
        #: Parsed frames awaiting the gateway's tick, oldest first.
        self.inbound: deque[TrunkFrame] = deque()
        # Tallies the gateway folds into trunk.* metrics.
        self.frames_in = 0
        self.frames_out = 0
        self.shed_audio_frames = 0
        self.keepalives_sent = 0
        self.sendalls = 0           # syscalls spent writing
        self.recvs = 0              # syscalls spent reading
        self.batch_frames_out = 0   # AUDIO_BATCH frames emitted
        self.batch_entries_out = 0  # bearer payloads packed into them
        self._outbound: queue.Queue = queue.Queue()
        self._audio_queued = 0      # bearer payloads currently enqueued
        self._counts_lock = threading.Lock()
        self._close_lock = threading.Lock()
        set_nodelay(sock)
        self._reader = threading.Thread(
            target=self._read_loop, name="trunk-read-%s" % self.name,
            daemon=True)
        self._writer = threading.Thread(
            target=self._write_loop, name="trunk-write-%s" % self.name,
            daemon=True)

    def start(self) -> "TrunkLink":
        self._reader.start()
        self._writer.start()
        return self

    def allocate_call_id(self) -> int:
        """The next call id this endpoint may originate with."""
        with self._counts_lock:
            call_id = self._next_call_id
            self._next_call_id += 2
        return call_id

    # -- sending (called under the exchange lock: enqueue only) ---------------

    def send(self, frame: TrunkFrame) -> bool:
        """Queue a frame for the writer; False if it had to be shed.

        Bearer frames past the outbound bound are shed oldest-intent
        first (we drop the *new* frame -- concealment on the far side
        covers the gap); signaling frames are always queued, because a
        lost RELEASE would leak a call on the peer.  The shed check, the
        tally bump and the enqueue happen under one lock so the decision
        cannot interleave with the writer's drain-time decrement
        (``Queue.put`` on an unbounded queue never blocks).
        """
        if not self.alive:
            return False
        if frame.type is FrameType.AUDIO:
            with self._counts_lock:
                if self._audio_queued >= self.outbound_bound:
                    self.shed_audio_frames += 1
                    return False
                self._audio_queued += 1
                self._outbound.put(frame)
            return True
        self._outbound.put(frame)
        return True

    def send_batch(self, entries) -> int:
        """Queue one flush window's bearer payloads; entries accepted.

        ``entries`` are ``(call_id, seq, mulaw_payload)`` tuples.  The
        batch is all-or-nothing against the outbound bound: a saturated
        queue sheds the whole window (the far side conceals one block of
        every call) rather than an arbitrary prefix of it.
        """
        if not self.alive or not entries:
            return 0
        count = len(entries)
        if not self.batching:
            # Old-minor peer: fall back to per-frame bearer.
            accepted = 0
            for call_id, seq, payload in entries:
                if self.send(TrunkFrame(FrameType.AUDIO, call_id, seq=seq,
                                        payload=bytes(payload))):
                    accepted += 1
            return accepted
        with self._counts_lock:
            if self._audio_queued + count > self.outbound_bound:
                self.shed_audio_frames += count
                return 0
            self._audio_queued += count
            self._outbound.put(TrunkFrame(FrameType.AUDIO_BATCH,
                                          entries=tuple(entries)))
        return count

    def stale(self, now: float | None = None) -> bool:
        """Has the peer gone silent past the keepalive deadline?"""
        reference = time.monotonic() if now is None else now
        return reference - self.last_rx > self.keepalive_timeout

    # -- pump threads ---------------------------------------------------------

    def _read_loop(self) -> None:
        stream = FrameStream(self.sock) if self.batching else None
        try:
            while self.alive:
                if stream is not None:
                    frames = stream.read_frames()
                    self.recvs = stream.recvs
                else:
                    # Old-minor oracle path: two blocking recvs a frame,
                    # exactly the pre-batch reader.
                    frames = (read_frame(self.sock),)
                    self.recvs += 2
                self.last_rx = time.monotonic()
                self.frames_in += len(frames)
                for frame in frames:
                    frame_type = frame.type
                    if frame_type is FrameType.PING:
                        self.send(TrunkFrame(FrameType.PONG,
                                             token=frame.token))
                    elif frame_type is FrameType.PONG:
                        pass
                    else:
                        self.inbound.append(frame)
        except (ConnectionClosed, OSError):
            pass
        except TrunkProtocolError as exc:
            log.warning("trunk link %s: protocol violation: %s",
                        self.name, exc)
        finally:
            self.close()

    def _write_loop(self) -> None:
        if not self.batching:
            self._write_loop_per_frame()
            return
        out = bytearray()
        try:
            while self.alive:
                try:
                    frame = self._outbound.get(
                        timeout=self.keepalive_interval)
                except queue.Empty:
                    self.keepalives_sent += 1
                    self.sock.sendall(_PING_BYTES)
                    self.sendalls += 1
                    continue
                if frame is None:
                    break
                # Sweep: drain whatever queued behind the first frame so
                # the whole backlog goes out in one write.
                sweep = [frame]
                stop = False
                while len(sweep) < MAX_WRITE_SWEEP:
                    try:
                        extra = self._outbound.get_nowait()
                    except queue.Empty:
                        break
                    if extra is None:
                        stop = True
                        break
                    sweep.append(extra)
                audio_blocks = 0
                for swept in sweep:
                    if swept.type is FrameType.AUDIO:
                        audio_blocks += 1
                    elif swept.type is FrameType.AUDIO_BATCH:
                        audio_blocks += len(swept.entries)
                if audio_blocks:
                    with self._counts_lock:
                        self._audio_queued -= audio_blocks
                del out[:]
                self.frames_out += self._encode_sweep(sweep, out)
                self.sock.sendall(out)
                self.sendalls += 1
                if stop:
                    break
        except OSError:
            pass
        finally:
            self.close()

    def _encode_sweep(self, sweep: list[TrunkFrame],
                      out: bytearray) -> int:
        """Encode a sweep, collapsing bearer runs into AUDIO_BATCH.

        Frame order is preserved: signaling flushes the current bearer
        run before being written, so RELEASE never overtakes the audio
        queued ahead of it.  Returns the number of wire frames emitted.
        """
        run: list = []
        wire_frames = 0
        for frame in sweep:
            frame_type = frame.type
            if frame_type is FrameType.AUDIO:
                run.append((frame.call_id, frame.seq, frame.payload))
            elif frame_type is FrameType.AUDIO_BATCH:
                run.extend(frame.entries)
            else:
                wire_frames += self._flush_run(run, out)
                frame.encode_into(out)
                wire_frames += 1
        wire_frames += self._flush_run(run, out)
        return wire_frames

    def _flush_run(self, run: list, out: bytearray) -> int:
        if not run:
            return 0
        if len(run) == 1:
            # A lone block rides a plain AUDIO frame (4 header bytes
            # cheaper, and it keeps the per-frame decoder exercised
            # between new peers too).
            call_id, seq, payload = run[0]
            TrunkFrame(FrameType.AUDIO, call_id, seq=seq,
                       payload=payload).encode_into(out)
        else:
            encode_audio_batch_into(out, run)
            self.batch_frames_out += 1
            self.batch_entries_out += len(run)
        run.clear()
        return 1

    def _write_loop_per_frame(self) -> None:
        """The pre-batch writer: one encode + one sendall per frame.

        Old-minor peers get exactly this loop, which doubles as the
        equivalence oracle the E16 bench measures the batched path
        against.
        """
        try:
            while self.alive:
                try:
                    frame = self._outbound.get(
                        timeout=self.keepalive_interval)
                except queue.Empty:
                    self.keepalives_sent += 1
                    self.sock.sendall(_PING_BYTES)
                    self.sendalls += 1
                    continue
                if frame is None:
                    break
                if frame.type is FrameType.AUDIO:
                    with self._counts_lock:
                        self._audio_queued -= 1
                self.sock.sendall(frame.encode())
                self.sendalls += 1
                self.frames_out += 1
        except OSError:
            pass
        finally:
            self.close()

    # -- teardown -------------------------------------------------------------

    def close(self) -> None:
        with self._close_lock:
            if not self.alive:
                return
            self.alive = False
        self._outbound.put(None)    # wake the writer
        for how in (socket.SHUT_RDWR,):
            try:
                self.sock.shutdown(how)
            except OSError:
                pass
        try:
            self.sock.close()
        except OSError:
            pass
