"""One live trunk connection: socket, pump threads, keepalives.

A :class:`TrunkLink` owns an already-handshaken socket and two threads:

* the **reader** parses frames off the wire into an inbound deque that
  the gateway drains from the exchange tick (signaling and bearer are
  applied under the exchange's clock, never from the socket thread);
* the **writer** drains an outbound queue into ``sendall`` and emits
  PING keepalives when the queue idles.

The gateway's tick thread runs inside the audio block cycle, under the
server's topology lock -- so the link never does socket I/O on behalf of
a caller: ``send`` is an enqueue, and a peer that stops reading costs at
most the bounded outbound queue (oldest AUDIO frames are shed first;
signaling is never dropped).  Liveness is the reader's last-received
timestamp; the gateway declares the link dead when it goes stale.
"""

from __future__ import annotations

import logging
import queue
import socket
import threading
import time
from collections import deque

from ..protocol.wire import ConnectionClosed, set_nodelay
from .wire import FrameType, Handshake, TrunkFrame, TrunkProtocolError, \
    read_frame

log = logging.getLogger(__name__)

#: Outbound frames queued before AUDIO shedding starts.  ~256 blocks is
#: five seconds of bearer at 20 ms blocks -- far beyond any healthy
#: link's in-flight window.
DEFAULT_OUTBOUND_BOUND = 256

#: Seconds of writer idleness between PING keepalives.
DEFAULT_KEEPALIVE_INTERVAL = 1.0

#: Missed-keepalive multiple after which the gateway calls a link dead.
KEEPALIVE_TIMEOUT_FACTOR = 3.0


class TrunkLink:
    """A handshaken trunk connection being pumped in both directions."""

    def __init__(self, sock: socket.socket, peer: Handshake, *,
                 initiated: bool, name: str = "",
                 keepalive_interval: float = DEFAULT_KEEPALIVE_INTERVAL,
                 outbound_bound: int = DEFAULT_OUTBOUND_BOUND) -> None:
        self.sock = sock
        self.peer = peer
        #: True when this endpoint opened the TCP connection; initiators
        #: allocate odd call ids, acceptors even (see trunk/wire.py).
        self.initiated = initiated
        self.name = name or peer.name
        self.keepalive_interval = keepalive_interval
        self.keepalive_timeout = (KEEPALIVE_TIMEOUT_FACTOR
                                  * keepalive_interval)
        self.outbound_bound = outbound_bound
        self.alive = True
        self.last_rx = time.monotonic()
        # Initiators allocate odd call ids, acceptors even, so calls
        # originated simultaneously at both ends can never collide.
        self._next_call_id = 1 if initiated else 2
        #: Parsed frames awaiting the gateway's tick, oldest first.
        self.inbound: deque[TrunkFrame] = deque()
        # Tallies the gateway folds into trunk.* metrics.
        self.frames_in = 0
        self.frames_out = 0
        self.shed_audio_frames = 0
        self.keepalives_sent = 0
        self._outbound: queue.Queue = queue.Queue()
        self._audio_queued = 0      # AUDIO frames currently enqueued
        self._counts_lock = threading.Lock()
        self._close_lock = threading.Lock()
        set_nodelay(sock)
        self._reader = threading.Thread(
            target=self._read_loop, name="trunk-read-%s" % self.name,
            daemon=True)
        self._writer = threading.Thread(
            target=self._write_loop, name="trunk-write-%s" % self.name,
            daemon=True)

    def start(self) -> "TrunkLink":
        self._reader.start()
        self._writer.start()
        return self

    def allocate_call_id(self) -> int:
        """The next call id this endpoint may originate with."""
        with self._counts_lock:
            call_id = self._next_call_id
            self._next_call_id += 2
        return call_id

    # -- sending (called under the exchange lock: enqueue only) ---------------

    def send(self, frame: TrunkFrame) -> bool:
        """Queue a frame for the writer; False if it had to be shed.

        Bearer frames past the outbound bound are shed oldest-intent
        first (we drop the *new* frame -- concealment on the far side
        covers the gap); signaling frames are always queued, because a
        lost RELEASE would leak a call on the peer.
        """
        if not self.alive:
            return False
        if frame.type is FrameType.AUDIO:
            with self._counts_lock:
                if self._audio_queued >= self.outbound_bound:
                    self.shed_audio_frames += 1
                    return False
                self._audio_queued += 1
        self._outbound.put(frame)
        return True

    def stale(self, now: float | None = None) -> bool:
        """Has the peer gone silent past the keepalive deadline?"""
        reference = time.monotonic() if now is None else now
        return reference - self.last_rx > self.keepalive_timeout

    # -- pump threads ---------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while self.alive:
                frame = read_frame(self.sock)
                self.last_rx = time.monotonic()
                self.frames_in += 1
                if frame.type is FrameType.PING:
                    self.send(TrunkFrame(FrameType.PONG, token=frame.token))
                    continue
                if frame.type is FrameType.PONG:
                    continue
                self.inbound.append(frame)
        except (ConnectionClosed, OSError):
            pass
        except TrunkProtocolError as exc:
            log.warning("trunk link %s: protocol violation: %s",
                        self.name, exc)
        finally:
            self.close()

    def _write_loop(self) -> None:
        try:
            while self.alive:
                try:
                    frame = self._outbound.get(
                        timeout=self.keepalive_interval)
                except queue.Empty:
                    self.keepalives_sent += 1
                    self.sock.sendall(
                        TrunkFrame(FrameType.PING).encode())
                    continue
                if frame is None:
                    break
                if frame.type is FrameType.AUDIO:
                    with self._counts_lock:
                        self._audio_queued -= 1
                self.sock.sendall(frame.encode())
                self.frames_out += 1
        except OSError:
            pass
        finally:
            self.close()

    # -- teardown -------------------------------------------------------------

    def close(self) -> None:
        with self._close_lock:
            if not self.alive:
                return
            self.alive = False
        self._outbound.put(None)    # wake the writer
        for how in (socket.SHUT_RDWR,):
            try:
                self.sock.shutdown(how)
            except OSError:
                pass
        try:
            self.sock.close()
        except OSError:
            pass
