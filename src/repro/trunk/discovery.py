"""Mesh discovery: a tiny registry where gateways find each other.

Hand-wiring ``--trunk-route PREFIX=host:port`` pairs does not scale past
a lab bench.  The mesh replaces it with one well-known *registry*
endpoint (served by any node via ``--mesh-registry``): every gateway
periodically registers ``(name, trunk listen address, owned prefixes)``
and receives the full list of live peers in the same round trip.  From
that list the gateway auto-establishes trunk links (its neighbor policy
permitting) and the ROUTE_ADVERT plane (trunk/routing.py) does the
rest; the registry itself never sees a route or a call.

The wire format mirrors the trunk's: a fixed magic+version preamble,
then one length-prefixed frame each way per connection --

    preamble := magic "RMSH"  u16 version
    frame    := u32 length  u8 op  payload[length - 1]
    REGISTER := string name  string host  u16 port
                u16 count  count * string prefix
    PEERS    := u16 count  count * (string name  string host  u16 port
                                    u16 n  n * string prefix)

A poll is one short-lived TCP connection: connect, send the preamble
and a REGISTER, read back a PEERS, close.  Registration doubles as the
liveness signal -- entries older than the registry's TTL are pruned, so
a crashed node disappears from the next poll's answer.  Malformed input
raises :class:`RegistryProtocolError` and costs the offender only its
own connection.

Threading: :class:`MeshRegistry` serves from its own accept thread and
:class:`MeshDiscovery` polls from its own timer thread; the gateway's
tick only ever reads their latest snapshots.  Those two loops are the
lock-discipline exemptions for this file.
"""

from __future__ import annotations

import logging
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from ..protocol.wire import Reader, WireFormatError, Writer, recv_exact
from .wire import TrunkProtocolError

log = logging.getLogger(__name__)

REGISTRY_MAGIC = b"RMSH"
REGISTRY_VERSION = 1

#: Registry frame opcodes.
OP_REGISTER = 1
OP_PEERS = 2

#: Upper bound on one registry frame's encoded size.
MAX_REGISTRY_FRAME_BYTES = 1 << 20

#: Upper bound on peers in one PEERS frame (and prefixes per peer); a
#: corrupted count must not drive an allocation loop.
MAX_REGISTRY_PEERS = 4096
MAX_PEER_PREFIXES = 256

#: Seconds a registration stays live without being refreshed.
DEFAULT_REGISTRY_TTL = 5.0

#: Seconds between a node's register/poll round trips.
DEFAULT_POLL_INTERVAL = 0.5

_LENGTH = struct.Struct("<I")
_PREAMBLE = struct.Struct("<4sH")


class RegistryProtocolError(TrunkProtocolError):
    """The peer violated the registry wire format."""


@dataclass(frozen=True)
class PeerRecord:
    """One registered gateway: where its trunk listener is and which
    prefixes it claims to originate."""

    name: str
    host: str
    port: int
    prefixes: tuple = field(default_factory=tuple)


def _write_record(writer: Writer, record: PeerRecord) -> None:
    writer.string(record.name)
    writer.string(record.host)
    writer.u16(record.port)
    writer.u16(len(record.prefixes))
    for prefix in record.prefixes:
        writer.string(prefix)


def _read_record(reader: Reader) -> PeerRecord:
    name = reader.string()
    host = reader.string()
    port = reader.u16()
    count = reader.u16()
    if count > MAX_PEER_PREFIXES:
        raise RegistryProtocolError(
            "peer claims %d prefixes, too many" % count)
    prefixes = tuple(reader.string() for _ in range(count))
    return PeerRecord(name, host, port, prefixes)


def _frame(op: int, writer: Writer) -> bytes:
    body = bytes([op]) + writer.getvalue()
    return _LENGTH.pack(len(body)) + body


def encode_register(record: PeerRecord) -> bytes:
    """One REGISTER frame (length prefix included)."""
    writer = Writer()
    _write_record(writer, record)
    return _frame(OP_REGISTER, writer)


def encode_peers(records) -> bytes:
    """One PEERS frame (length prefix included)."""
    writer = Writer()
    writer.u16(len(records))
    for record in records:
        _write_record(writer, record)
    return _frame(OP_PEERS, writer)


def decode_registry_frame(body: bytes) -> tuple[int, list[PeerRecord]]:
    """Decode one frame body into ``(op, records)``.

    REGISTER yields a single-record list; PEERS yields the full roster.
    """
    reader = Reader(body)
    try:
        op = reader.u8()
        if op == OP_REGISTER:
            records = [_read_record(reader)]
        elif op == OP_PEERS:
            count = reader.u16()
            if count > MAX_REGISTRY_PEERS:
                raise RegistryProtocolError(
                    "PEERS frame of %d records too large" % count)
            records = [_read_record(reader) for _ in range(count)]
        else:
            raise RegistryProtocolError("unknown registry op %d" % op)
        reader.expect_end()
    except WireFormatError as exc:
        raise RegistryProtocolError(str(exc)) from None
    return op, records


def read_registry_frame(sock: socket.socket) -> tuple[int, list[PeerRecord]]:
    """Read one length-prefixed registry frame (blocking)."""
    (length,) = _LENGTH.unpack(recv_exact(sock, _LENGTH.size))
    if length == 0 or length > MAX_REGISTRY_FRAME_BYTES:
        raise RegistryProtocolError("bad registry frame length %d" % length)
    return decode_registry_frame(recv_exact(sock, length))


def read_preamble(sock: socket.socket) -> None:
    """Consume and validate the RMSH magic + version."""
    magic, version = _PREAMBLE.unpack(recv_exact(sock, _PREAMBLE.size))
    if magic != REGISTRY_MAGIC:
        raise RegistryProtocolError("bad registry magic %r" % magic)
    if version != REGISTRY_VERSION:
        raise RegistryProtocolError(
            "registry version mismatch: %d vs %d"
            % (version, REGISTRY_VERSION))


def encode_preamble() -> bytes:
    return _PREAMBLE.pack(REGISTRY_MAGIC, REGISTRY_VERSION)


class MeshRegistry:
    """The registry server: any node can host it.

    One accept thread handles each connection to completion -- a poll is
    a few hundred bytes, so serialized handling keeps the whole thing a
    page of code with no per-connection threads to leak.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 ttl: float = DEFAULT_REGISTRY_TTL,
                 io_timeout: float = 2.0) -> None:
        self.host = host
        self.port = port
        self.ttl = ttl
        self.io_timeout = io_timeout
        self._lock = threading.Lock()
        #: name -> (record, last_seen monotonic).
        self._peers: dict[str, tuple[PeerRecord, float]] = {}
        self._listener: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._running = False
        # Plain tallies; a hosting gateway folds them into mesh.registry.*.
        self.registrations = 0
        self.expired = 0
        self.bad_requests = 0

    def start(self) -> "MeshRegistry":
        if self._running:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port or 0))
        listener.listen(32)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._running = True
        self._thread = threading.Thread(target=self._serve_loop,
                                        name="mesh-registry", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def snapshot(self) -> list[PeerRecord]:
        """The live roster (pruned of expired entries)."""
        now = time.monotonic()
        with self._lock:
            self._prune(now)
            return [record for record, _seen in self._peers.values()]

    def _prune(self, now: float) -> None:
        """Drop registrations older than the TTL (lock held)."""
        dead = [name for name, (_record, seen) in self._peers.items()
                if now - seen > self.ttl]
        for name in dead:
            del self._peers[name]
        self.expired += len(dead)

    # -- the accept/serve thread ----------------------------------------------

    def _serve_loop(self) -> None:
        while self._running:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break
            try:
                sock.settimeout(self.io_timeout)
                self._handle(sock)
            except (OSError, RegistryProtocolError) as exc:
                self.bad_requests += 1
                log.debug("mesh registry: dropped request: %s", exc)
            finally:
                try:
                    sock.close()
                except OSError:
                    pass

    def _handle(self, sock: socket.socket) -> None:
        read_preamble(sock)
        op, records = read_registry_frame(sock)
        if op != OP_REGISTER:
            raise RegistryProtocolError(
                "expected REGISTER, got op %d" % op)
        record = records[0]
        if not record.name:
            raise RegistryProtocolError("peer registered without a name")
        now = time.monotonic()
        with self._lock:
            self._prune(now)
            self._peers[record.name] = (record, now)
            self.registrations += 1
            roster = [peer for peer, _seen in self._peers.values()]
        sock.sendall(encode_peers(roster))


class MeshDiscovery:
    """One gateway's registry client: register, poll, remember peers.

    ``record_fn`` is called per poll so the registration always carries
    the listener's *resolved* port (ephemeral listeners bind during
    gateway start).  The poll thread owns all socket I/O; the gateway's
    tick reads :meth:`peers` -- a dict copy under a flick of a lock.
    """

    def __init__(self, registry: tuple[str, int], record_fn, *,
                 interval: float = DEFAULT_POLL_INTERVAL,
                 io_timeout: float = 2.0) -> None:
        self.registry = registry
        self.record_fn = record_fn
        self.interval = interval
        self.io_timeout = io_timeout
        self._lock = threading.Lock()
        self._peers: dict[str, PeerRecord] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Plain tallies; the gateway folds them into mesh.discovery.*.
        self.polls = 0
        self.poll_failures = 0
        #: Bumped per successful poll; lets the gateway distinguish "no
        #: peers yet" from "registry unreachable".
        self.generation = 0

    def start(self) -> "MeshDiscovery":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._poll_loop,
                                        name="mesh-discovery", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def peers(self) -> dict[str, PeerRecord]:
        with self._lock:
            return dict(self._peers)

    def poll_once(self) -> bool:
        """One register/poll round trip; True on success.

        Called from the poll thread (and directly by tests); never from
        the gateway's tick.
        """
        record = self.record_fn()
        try:
            with socket.create_connection(self.registry,
                                          timeout=self.io_timeout) as sock:
                sock.settimeout(self.io_timeout)
                sock.sendall(encode_preamble() + encode_register(record))
                op, records = read_registry_frame(sock)
        except (OSError, RegistryProtocolError) as exc:
            self.poll_failures += 1
            log.debug("mesh discovery: poll failed: %s", exc)
            return False
        if op != OP_PEERS:
            self.poll_failures += 1
            return False
        roster = {peer.name: peer for peer in records
                  if peer.name and peer.name != record.name}
        with self._lock:
            self._peers = roster
        self.polls += 1
        self.generation += 1
        return True

    def _poll_loop(self) -> None:
        while not self._stop.is_set():
            self.poll_once()
            self._stop.wait(self.interval)
