"""The dynamic route table: what the mesh has learned, per gateway.

A :class:`RouteTable` holds everything one gateway knows about which
peers own which number prefixes: the prefixes *this* node originates,
plus every route learned from ROUTE_ADVERT frames, keyed by
``(prefix, origin, link)`` so the same destination reached over two
trunks keeps both paths and dial-time failover has somewhere to go.

Semantics (distance-vector, deliberately minimal):

* an advert carries the *sender's* hop count to the origin; learning it
  costs one more hop, and anything past ``max_hops`` is dropped;
* per origin, adverts carry a monotonically increasing sequence number
  (bumped when the origin's prefix set changes); an advert older than
  what a link already delivered is stale and ignored -- TCP keeps one
  link's stream ordered, so this only matters across reconnects;
* :meth:`withdraw_link` drops every route a dead link taught us (the
  link-loss satellite fix: a dead next hop must not stay resolvable);
* :meth:`exports_for` produces the advert set for one link with split
  horizon -- routes learned *from* a link are never advertised back to
  it -- which, with withdrawal-on-loss and the hop bound, is enough for
  a line/star/ring fleet to converge without count-to-infinity;
* :meth:`candidates` answers a dial: live links only, longest matching
  prefix first, lowest hop count within it.

The table is plain data with no locks and no I/O: every mutation
happens on the gateway's tick (under the server's topology lock when
embedded in a server), which is exactly the discipline
``scripts/check_lock_discipline.py`` enforces for this file.
"""

from __future__ import annotations

from dataclasses import dataclass

from .wire import UNREACHABLE_HOPS

#: Default bound on route length, both for accepting adverts and for
#: refusing SETUP2 frames that crossed too many tandems.
DEFAULT_MAX_HOPS = 8


@dataclass
class RouteEntry:
    """One learned route: ``origin`` owns ``prefix``, ``hops`` away
    through the link this entry was learned on."""

    prefix: str
    origin: str
    hops: int
    seq: int
    link: object


class RouteTable:
    """Longest-prefix, lowest-hop route knowledge for one gateway."""

    def __init__(self, node: str, *,
                 max_hops: int = DEFAULT_MAX_HOPS) -> None:
        self.node = node
        self.max_hops = max_hops
        #: Prefixes this node originates (advertised at hop count 0).
        self._local: list[str] = []
        #: This origin's advert sequence; bumped when _local changes.
        self.seq = 0
        #: (prefix, origin) -> {link: RouteEntry}.
        self._remote: dict[tuple[str, str], dict] = {}
        #: Monotonic change counter; the gateway's advert flush compares
        #: it against what each link last saw, so an unchanged table
        #: costs nothing to "re-advertise".
        self.version = 0
        # Plain tallies; the gateway folds them into trunk.route.*.
        self.adverts_in = 0
        self.withdrawn = 0
        self.stale_ignored = 0
        self.hop_limited = 0

    # -- local prefixes -------------------------------------------------------

    def add_local(self, prefix: str) -> None:
        if prefix and prefix not in self._local:
            self._local.append(prefix)
            self.seq += 1
            self.version += 1

    @property
    def local_prefixes(self) -> tuple[str, ...]:
        return tuple(self._local)

    # -- learning (gateway tick, from ROUTE_ADVERT frames) --------------------

    def learn(self, link, prefix: str, origin: str, hops: int,
              seq: int) -> bool:
        """Apply one advert entry from ``link``; True if anything
        changed (so the gateway knows to re-advertise)."""
        self.adverts_in += 1
        if not prefix or not origin or origin == self.node:
            # Our own routes echoed back (or garbage): never learn a
            # path to ourselves through somebody else.
            return False
        key = (prefix, origin)
        by_link = self._remote.get(key)
        if hops == UNREACHABLE_HOPS:
            if by_link is None or link not in by_link:
                return False
            if seq < by_link[link].seq:
                self.stale_ignored += 1
                return False
            del by_link[link]
            if not by_link:
                del self._remote[key]
            self.withdrawn += 1
            self.version += 1
            return True
        cost = hops + 1
        if cost > self.max_hops:
            self.hop_limited += 1
            return False
        if by_link is None:
            by_link = self._remote[key] = {}
        entry = by_link.get(link)
        if entry is not None:
            if seq < entry.seq:
                self.stale_ignored += 1
                return False
            if seq == entry.seq and cost == entry.hops:
                return False
            entry.seq = seq
            entry.hops = cost
        else:
            by_link[link] = RouteEntry(prefix, origin, cost, seq, link)
        self.version += 1
        return True

    def withdraw_link(self, link) -> list[tuple[str, str]]:
        """Forget every route learned over ``link`` (it died).

        Returns the ``(prefix, origin)`` pairs that lost a path, so the
        caller can log them; the advert flush notices the version bump
        and propagates withdrawals (or the surviving alternate path) to
        the remaining peers on its own.
        """
        lost: list[tuple[str, str]] = []
        for key in list(self._remote):
            by_link = self._remote[key]
            if link in by_link:
                del by_link[link]
                lost.append(key)
                if not by_link:
                    del self._remote[key]
        if lost:
            self.withdrawn += len(lost)
            self.version += 1
        return lost

    # -- lookup (dial time) ---------------------------------------------------

    def candidates(self, number: str) -> tuple[list, int]:
        """Ordered live next-hop links for ``number``.

        Returns ``(links, prefix_len)``: the links carrying the longest
        prefix matching ``number`` among entries whose link is alive,
        ordered lowest hop count first and deduplicated, plus that
        prefix's length (-1 when nothing matches).  Dead links never
        match at all -- that is the liveness fix: a withdrawn-but-not-
        yet-reaped next hop must not capture the dial.
        """
        best_len = -1
        matched: list[RouteEntry] = []
        for (prefix, _origin), by_link in self._remote.items():
            if not number.startswith(prefix):
                continue
            live = [entry for entry in by_link.values()
                    if entry.link.alive]
            if not live:
                continue
            if len(prefix) > best_len:
                best_len = len(prefix)
                matched = live
            elif len(prefix) == best_len:
                matched.extend(live)
        matched.sort(key=lambda entry: entry.hops)
        links: list = []
        for entry in matched:
            if entry.link not in links:
                links.append(entry.link)
        return links, best_len

    def remote_match_len(self, number: str) -> int:
        """Length of the longest *remote* prefix covering ``number``,
        liveness ignored (-1 when none).

        The gateway uses this to tell "no such number" (nothing ever
        claimed the prefix) from "trunk down" (a route exists but every
        next hop is dead right now).
        """
        best = -1
        for prefix, _origin in self._remote:
            if number.startswith(prefix) and len(prefix) > best:
                best = len(prefix)
        return best

    # -- advertising (gateway advert flush) -----------------------------------

    def exports_for(self, link) -> dict[tuple[str, str], tuple[int, int]]:
        """The advert set one peer should hold: ``(prefix, origin) ->
        (hops, seq)``.

        Split horizon: routes learned over ``link`` itself are omitted,
        so two nodes never advertise a destination back and forth at
        ever-growing hop counts.  Hop counts are *this* node's cost;
        the receiver pays one more.
        """
        export: dict[tuple[str, str], tuple[int, int]] = {}
        for prefix in self._local:
            export[(prefix, self.node)] = (0, self.seq)
        for key, by_link in self._remote.items():
            best: RouteEntry | None = None
            for entry_link, entry in by_link.items():
                if entry_link is link or not entry_link.alive:
                    continue
                if best is None or entry.hops < best.hops:
                    best = entry
            if best is not None and best.hops < self.max_hops:
                export[key] = (best.hops, best.seq)
        return export

    # -- introspection (stats, tests) -----------------------------------------

    def entry_count(self) -> int:
        return sum(len(by_link) for by_link in self._remote.values())

    def snapshot(self) -> list[dict]:
        """Route rows for the stats plane, best path first per key."""
        rows: list[dict] = []
        for (prefix, origin), by_link in sorted(self._remote.items()):
            for entry in sorted(by_link.values(),
                                key=lambda item: item.hops):
                rows.append({
                    "prefix": prefix,
                    "origin": origin,
                    "hops": entry.hops,
                    "seq": entry.seq,
                    "next_hop": getattr(entry.link, "name", "?"),
                    "live": bool(getattr(entry.link, "alive", False)),
                })
        return rows
