"""Per-call jitter buffers for trunk bearer audio.

TCP gives the trunk in-order delivery, but not *timely* delivery: the
sending exchange emits one audio block per tick while the receiving
exchange pops one per tick of its own clock, and chaos (latency, jitter,
throttling, reconnects) can starve or flood the receiver arbitrarily.
The :class:`JitterBuffer` decouples the two clocks:

* frames arrive with sequence numbers; late frames (already concealed
  and skipped past) are dropped and counted;
* gaps in the sequence are *concealed* with silence exactly once, and
  counted as lost;
* a pop against an empty (or not yet re-primed) buffer returns silence
  and counts an underrun;
* total buffered audio is bounded; overflow sheds the oldest samples so
  latency cannot grow without bound on a fast producer.

The buffer is single-consumer (the gateway's tick) but the producer is
the link reader thread, so push/pop take one small lock.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np


class JitterBuffer:
    """Reorder, conceal, and bound one direction of one call's audio."""

    def __init__(self, *, max_depth_samples: int = 16 * 160,
                 prime_samples: int = 2 * 160,
                 reorder_window: int = 4) -> None:
        #: Upper bound on buffered audio; overflow sheds oldest samples.
        self.max_depth_samples = max_depth_samples
        #: After an underrun (or at start) the buffer waits until this
        #: much audio is queued before popping again, so one late frame
        #: does not turn into a machine-gun of one-block underruns.
        self.prime_samples = min(prime_samples, max_depth_samples)
        #: How many frames ahead of a gap must exist before the gap is
        #: declared lost and skipped (TCP reorders nothing, but frames
        #: from before a reconnect may be missing entirely).
        self.reorder_window = reorder_window
        self._lock = threading.Lock()
        self._pending: dict[int, np.ndarray] = {}
        self._ready: deque[np.ndarray] = deque()
        self._ready_samples = 0
        self._next_seq: int | None = None
        self._primed = False
        # Plain tallies; the gateway folds them into trunk.* metrics.
        self.late_frames = 0
        self.lost_frames = 0
        self.underruns = 0
        self.shed_samples = 0

    # -- producer side (link reader thread) -----------------------------------

    def push(self, seq: int, samples: np.ndarray) -> None:
        with self._lock:
            if self._next_seq is None:
                self._next_seq = seq
            if seq < self._next_seq:
                self.late_frames += 1
                return
            self._pending[seq] = samples
            self._drain_pending()
            self._shed_overflow()

    def _drain_pending(self) -> None:
        """Move consecutive frames into the ready queue (lock held)."""
        while self._next_seq in self._pending:
            block = self._pending.pop(self._next_seq)
            self._ready.append(block)
            self._ready_samples += len(block)
            self._next_seq += 1
        # A gap with plenty of later audio behind it will never fill:
        # declare the missing frames lost and skip ahead.
        while (self._pending
               and len(self._pending) >= self.reorder_window):
            skip_to = min(self._pending)
            self.lost_frames += skip_to - self._next_seq
            self._next_seq = skip_to
            while self._next_seq in self._pending:
                block = self._pending.pop(self._next_seq)
                self._ready.append(block)
                self._ready_samples += len(block)
                self._next_seq += 1

    def _shed_overflow(self) -> None:
        while (self._ready_samples > self.max_depth_samples
               and len(self._ready) > 1):
            shed = self._ready.popleft()
            self._ready_samples -= len(shed)
            self.shed_samples += len(shed)

    # -- consumer side (gateway tick) -----------------------------------------

    def pop(self, frames: int) -> np.ndarray:
        """Exactly ``frames`` samples, silence-concealed on underrun."""
        out = np.zeros(frames, dtype=np.int16)
        with self._lock:
            if not self._primed:
                if self._ready_samples < self.prime_samples:
                    return out
                self._primed = True
            filled = 0
            while filled < frames and self._ready:
                block = self._ready[0]
                take = min(len(block), frames - filled)
                out[filled:filled + take] = block[:take]
                if take == len(block):
                    self._ready.popleft()
                else:
                    self._ready[0] = block[take:]
                self._ready_samples -= take
                filled += take
            if filled < frames:
                self.underruns += 1
                self._primed = False
        return out

    @property
    def depth_samples(self) -> int:
        with self._lock:
            return self._ready_samples + sum(
                len(block) for block in self._pending.values())
