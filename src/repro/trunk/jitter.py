"""Per-call jitter buffers for trunk bearer audio.

TCP gives the trunk in-order delivery, but not *timely* delivery: the
sending exchange emits one audio block per tick while the receiving
exchange pops one per tick of its own clock, and chaos (latency, jitter,
throttling, reconnects) can starve or flood the receiver arbitrarily.
The :class:`JitterBuffer` decouples the two clocks:

* frames arrive with sequence numbers; late frames (already concealed
  and skipped past) are dropped and counted;
* gaps in the sequence are *concealed* with silence exactly once, and
  counted as lost;
* a pop against an empty (or not yet re-primed) buffer returns silence
  and counts an underrun;
* total buffered audio is bounded; overflow sheds the oldest samples so
  latency cannot grow without bound on a fast producer.

The store is a contiguous ring of **raw mu-law bytes** (one byte per
sample), so depth accounting is O(1) arithmetic, a push is a memcpy,
and decoding happens once per pop as a single table ``np.take`` instead
of per-block at push time.  Silence concealment is the mu-law code
``0xFF``, which decodes to exactly sample 0.

The buffer is single-consumer (the gateway's tick) but the producer is
the link reader thread, so push/pop take one small lock.
"""

from __future__ import annotations

import threading

import numpy as np

from ..dsp.encodings import MULAW_DECODE_TABLE

#: The mu-law code for silence: decode(0xFF) == 0 exactly, so raw-byte
#: concealment and decoded-sample concealment produce identical audio.
MULAW_SILENCE = 0xFF


class JitterBuffer:
    """Reorder, conceal, and bound one direction of one call's audio."""

    def __init__(self, *, max_depth_samples: int = 16 * 160,
                 prime_samples: int = 2 * 160,
                 reorder_window: int = 4) -> None:
        #: Upper bound on buffered audio; overflow sheds oldest samples.
        self.max_depth_samples = max_depth_samples
        #: After an underrun (or at start) the buffer waits until this
        #: much audio is queued before popping again, so one late frame
        #: does not turn into a machine-gun of one-block underruns.
        self.prime_samples = min(prime_samples, max_depth_samples)
        #: How many frames ahead of a gap must exist before the gap is
        #: declared lost and skipped (TCP reorders nothing, but frames
        #: from before a reconnect may be missing entirely).
        self.reorder_window = reorder_window
        self._lock = threading.Lock()
        #: Out-of-order raw blocks waiting for the gap ahead to fill.
        self._pending: dict[int, bytes] = {}
        self._pending_samples = 0
        #: In-order raw mu-law ring: one byte per sample, so capacity in
        #: bytes IS the depth bound in samples.
        self._ring = bytearray(max_depth_samples)
        self._head = 0
        self._size = 0
        self._next_seq: int | None = None
        self._primed = False
        # Reused pop assembly scratch + shared silence returns; consumers
        # get either a view of these (never mutated) or a fresh decode.
        self._scratch = bytearray(0)
        self._silence_raw = b""
        self._silence_pcm = np.zeros(0, dtype=np.int16)
        self._silence_pcm.flags.writeable = False
        # Plain tallies; the gateway folds them into trunk.* metrics.
        self.late_frames = 0
        self.lost_frames = 0
        self.underruns = 0
        self.shed_samples = 0

    # -- producer side (link reader thread) -----------------------------------

    def push(self, seq: int, payload: bytes) -> None:
        """Queue one block of raw mu-law bytes under its sequence."""
        with self._lock:
            if self._next_seq is None:
                self._next_seq = seq
            if seq < self._next_seq:
                self.late_frames += 1
                return
            block = bytes(payload)
            self._pending[seq] = block
            self._pending_samples += len(block)
            self._drain_pending()

    def _drain_pending(self) -> None:
        """Move consecutive frames into the ring (lock held)."""
        while self._next_seq in self._pending:
            block = self._pending.pop(self._next_seq)
            self._pending_samples -= len(block)
            self._append(block)
            self._next_seq += 1
        # A gap with plenty of later audio behind it will never fill:
        # declare the missing frames lost and skip ahead.
        while (self._pending
               and len(self._pending) >= self.reorder_window):
            skip_to = min(self._pending)
            self.lost_frames += skip_to - self._next_seq
            self._next_seq = skip_to
            while self._next_seq in self._pending:
                block = self._pending.pop(self._next_seq)
                self._pending_samples -= len(block)
                self._append(block)
                self._next_seq += 1

    def _append(self, block: bytes) -> None:
        """Copy a block into the ring, shedding oldest bytes on overflow
        (lock held)."""
        ring = self._ring
        capacity = self.max_depth_samples
        length = len(block)
        if length >= capacity:
            # Pathological single block past the whole depth bound: keep
            # its newest ``capacity`` samples, count everything displaced
            # (prior content plus the truncated prefix) as shed.
            self.shed_samples += self._size + (length - capacity)
            ring[0:capacity] = block[length - capacity:]
            self._head = 0
            self._size = capacity
            return
        overflow = self._size + length - capacity
        if overflow > 0:
            self._head = (self._head + overflow) % capacity
            self._size -= overflow
            self.shed_samples += overflow
        tail = (self._head + self._size) % capacity
        first = min(length, capacity - tail)
        ring[tail:tail + first] = block[:first]
        if first < length:
            ring[0:length - first] = block[first:]
        self._size += length

    # -- consumer side (gateway tick) -----------------------------------------

    def poppable(self) -> bool:
        """Advisory: would :meth:`pop` yield audio (or a *real*
        underrun) rather than pre-prime silence?

        Lock-free by design -- two int reads under the GIL; at worst one
        block stale, which costs one extra tick of priming delay.  The
        gateway pump uses this to skip legs with nothing to say: a
        skipped leg's listener hears the same silence either way
        (``Line.receive_audio`` zero-pads an empty buffer).
        """
        return self._primed or self._size >= self.prime_samples

    def pop_raw(self, frames: int) -> memoryview:
        """Exactly ``frames`` raw mu-law bytes, 0xFF-concealed.

        Returns a view of a buffer this JitterBuffer owns and reuses on
        the next pop: callers must consume (or copy) it before popping
        again.  The gateway's vectorized pump decodes all legs' views in
        one ``np.take`` within the same tick, so reuse is safe there.
        """
        taken = 0
        with self._lock:
            if not self._primed:
                if self._size < self.prime_samples:
                    return self._silence_raw_view(frames)
                self._primed = True
            taken = min(frames, self._size)
            scratch = self._scratch
            if len(scratch) < frames:
                scratch = self._scratch = bytearray(frames)
            head = self._head
            capacity = self.max_depth_samples
            first = min(taken, capacity - head)
            scratch[0:first] = self._ring[head:head + first]
            if first < taken:
                scratch[first:taken] = self._ring[0:taken - first]
            self._head = (head + taken) % capacity
            self._size -= taken
            if taken < frames:
                self.underruns += 1
                self._primed = False
        if taken < frames:
            scratch[taken:frames] = bytes([MULAW_SILENCE]) * (frames - taken)
        return memoryview(scratch)[:frames]

    def pop(self, frames: int) -> np.ndarray:
        """Exactly ``frames`` decoded samples, silence-concealed.

        Pure silence returns a shared read-only zeros view (no
        allocation); real audio is decoded fresh in one table take, so
        callers may keep the array as long as they like.
        """
        raw = self.pop_raw(frames)
        if raw.obj is self._silence_raw:
            return self._silence_pcm_view(frames)
        return np.take(MULAW_DECODE_TABLE,
                       np.frombuffer(raw, dtype=np.uint8))

    def _silence_raw_view(self, frames: int) -> memoryview:
        if len(self._silence_raw) < frames:
            self._silence_raw = bytes([MULAW_SILENCE]) * frames
        return memoryview(self._silence_raw)[:frames]

    def _silence_pcm_view(self, frames: int) -> np.ndarray:
        if len(self._silence_pcm) < frames:
            silence = np.zeros(frames, dtype=np.int16)
            silence.flags.writeable = False
            self._silence_pcm = silence
        return self._silence_pcm[:frames]

    @property
    def depth_samples(self) -> int:
        with self._lock:
            return self._size + self._pending_samples
