"""The trunk gateway: one exchange's window onto its peers.

A :class:`TrunkGateway` federates the local
:class:`~repro.telephony.exchange.TelephoneExchange` with the exchanges
of other audio servers over TCP trunk links, presenting remote calls as
ordinary Line-compatible endpoints so every exchange semantic -- busy
treatment, no-answer timers, forwarding, caller ID, hangup supervision
-- works unchanged end to end:

* an **outbound leg** (:class:`RemoteLine`) fronts a remote *callee*:
  ringing it sends SETUP down the route's link, and ANSWER / RELEASE
  frames come back as answer / failure signaling;
* an **inbound leg** (:class:`InboundLeg`) fronts the remote *caller*:
  a SETUP frame dials the local number exactly as a local line would,
  and local signaling (answered, busy, hangup) flows back as frames.

Routing is a static longest-prefix table (``--trunk-route
PREFIX=host:port``): numbers no local line owns are matched against the
table when dialed or forwarded.  Each route owns at most one link,
reconnected after loss with the Alib
:class:`~repro.alib.connection.RetryPolicy` backoff (attempted from
short-lived connector threads; the tick never blocks).  Bearer audio is
carried as sequence-numbered mu-law frames through a per-call
:class:`~repro.trunk.jitter.JitterBuffer` on the receiving side.

All signaling and bearer handling runs in :meth:`tick`, which the
exchange drives inside the audio block cycle -- link reader threads only
park parsed frames, so exchange state is mutated under one clock (and,
on a server, under the topology lock).  On link loss every call riding
the link is released mid-call on both sides within a tick.
"""

from __future__ import annotations

import logging
import socket
import threading
import time

import numpy as np

from ..alib.connection import RetryPolicy
from ..dsp.encodings import MULAW_DECODE_TABLE, mulaw_encode
from ..obs import NULL_REGISTRY
from ..protocol.wire import ConnectionClosed
from ..telephony.line import HookState, Line
from .jitter import JitterBuffer
from .link import (
    DEFAULT_KEEPALIVE_INTERVAL,
    DEFAULT_OUTBOUND_BOUND,
    TrunkLink,
)
from .wire import BATCH_MIN_MINOR, TRUNK_MINOR, FrameType, Handshake, \
    TrunkFrame, TrunkProtocolError, read_frame

log = logging.getLogger(__name__)

#: Cap on the exponential backoff exponent (RetryPolicy caps the delay
#: itself; this just keeps ``multiplier ** attempt`` bounded).
_MAX_BACKOFF_EXPONENT = 16

#: Cadence (in ticks) of the per-leg gauge pass: jitter counter folds
#: plus the depth/active gauges.  160 ms at the 20 ms block cycle --
#: fresh enough for stats consumers, invisible to the bearer path.
GAUGE_LEG_TICKS = 8


def parse_route(text: str) -> tuple[str, str, int]:
    """Parse a ``PREFIX=host:port`` route argument."""
    prefix, _, endpoint = text.partition("=")
    host, _, port = endpoint.rpartition(":")
    if not prefix or not host or not port.isdigit():
        raise ValueError("route must look like PREFIX=host:port: %r" % text)
    return prefix, host, int(port)


class TrunkRoute:
    """One static route: a number prefix homed at a peer gateway."""

    def __init__(self, prefix: str, host: str, port: int) -> None:
        self.prefix = prefix
        self.host = host
        self.port = port
        self.link: TrunkLink | None = None
        self.connecting = False
        self.attempt = 0
        self.next_attempt_at = 0.0
        self.ever_connected = False

    def live_link(self) -> TrunkLink | None:
        link = self.link
        if link is not None and link.alive:
            return link
        return None


class _TrunkLeg(Line):
    """Line-compatible endpoint fronting the far side of a trunk call."""

    def __init__(self, number: str, exchange, gateway: "TrunkGateway",
                 link: TrunkLink | None, call_id: int) -> None:
        super().__init__(number, exchange)
        self.gateway = gateway
        self.link = link
        self.call_id = call_id
        self.alerting = False
        self.released = False
        self.jitter = gateway.build_jitter()
        self._seq_out = 0

    # -- frames out -----------------------------------------------------------

    def _send(self, frame: TrunkFrame) -> None:
        self.gateway.send_on(self.link, frame)

    def _send_release(self, reason: str) -> None:
        if self.released:
            return
        self.released = True
        self._send(TrunkFrame(FrameType.RELEASE, self.call_id,
                              reason=reason))
        self.gateway.deregister_leg(self)

    # -- exchange-facing audio/signaling overrides ----------------------------

    def deliver_audio(self, samples: np.ndarray) -> None:
        """The local party spoke: relay the block as bearer audio.

        On a batching link the block is *staged*: the gateway's tick
        encodes every staged call's audio for this window in one table
        take and ships it as a single AUDIO_BATCH.  Old-minor links get
        the per-frame encode + AUDIO frame, exactly as before the batch
        path existed.
        """
        link = self.link
        if link is not None and link.alive and link.batching:
            self.gateway.stage_audio(self, samples)
            return
        payload = mulaw_encode(np.asarray(samples, dtype=np.int16))
        frame = TrunkFrame(FrameType.AUDIO, self.call_id,
                           seq=self._seq_out, payload=payload)
        self._seq_out += 1
        self._send(frame)

    def deliver_dtmf(self, digits: str) -> None:
        """The local party pressed keys: relay them as signaling."""
        self._send(TrunkFrame(FrameType.DTMF, self.call_id, digits=digits))


class RemoteLine(_TrunkLeg):
    """Outbound leg: the remote *callee* as seen by the local exchange."""

    def start_ringing(self, caller_info) -> None:
        self.ringing = True
        self.caller_info = caller_info
        if self.link is None or not self.link.alive:
            # The route is down right now: fail the call instead of
            # ringing into the void.  The call is already registered, so
            # the release path works synchronously from inside dial().
            self.ringing = False
            self.released = True
            self.gateway.deregister_leg(self)
            self.exchange.remote_released(self, "trunk down")
            return
        self.gateway.register_outbound(self)
        self._send(TrunkFrame(
            FrameType.SETUP, self.call_id, number=self.number,
            caller_id=caller_info.number,
            forwarded_from=caller_info.forwarded_from or ""))

    def stop_ringing(self) -> None:
        """The caller abandoned (or a timer fired) while we alerted."""
        if self.ringing:
            self.ringing = False
            self._send_release("abandoned")

    def far_end_hung_up(self) -> None:
        """The local caller hung up on the connected call."""
        self._send_release("hangup")

    # Called by the gateway when the matching frames arrive.

    def remote_answered(self) -> None:
        self.ringing = False
        self.hook = HookState.OFF_HOOK
        self.exchange.line_off_hook(self)

    def remote_released(self, reason: str) -> None:
        self.ringing = False
        self.released = True
        self.exchange.remote_released(self, reason or "released")


class InboundLeg(_TrunkLeg):
    """Inbound leg: the remote *caller* as seen by the local exchange."""

    def __init__(self, number: str, exchange, gateway: "TrunkGateway",
                 link: TrunkLink, call_id: int) -> None:
        super().__init__(number, exchange, gateway, link, call_id)
        self.hook = HookState.OFF_HOOK    # the remote caller is off hook

    def far_end_answered(self) -> None:
        self._send(TrunkFrame(FrameType.ANSWER, self.call_id))

    def far_end_hung_up(self) -> None:
        """The local callee hung up the connected call."""
        self._send_release("hangup")

    def call_failed(self, reason: str) -> None:
        """The local dial failed (busy, bad number, no answer...)."""
        self._send_release(reason)

    def remote_released(self, reason: str) -> None:
        """The remote caller went away: hang this leg up locally."""
        self.released = True
        if self.hook is HookState.OFF_HOOK:
            self.on_hook()


class TrunkGateway:
    """Federates the local exchange with remote peers over trunk links."""

    def __init__(self, exchange, *, name: str = "",
                 metrics=None,
                 keepalive_interval: float = DEFAULT_KEEPALIVE_INTERVAL,
                 outbound_bound: int = DEFAULT_OUTBOUND_BOUND,
                 jitter_depth_seconds: float = 0.32,
                 jitter_prime_seconds: float = 0.04,
                 retry: RetryPolicy | None = None,
                 connect_timeout: float = 2.0,
                 batch_enabled: bool = True) -> None:
        self.exchange = exchange
        self.name = name or "trunk-gateway"
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.keepalive_interval = keepalive_interval
        self.outbound_bound = outbound_bound
        #: Whether this gateway offers the AUDIO_BATCH fast path.  Off,
        #: it announces minor 0 and every link runs the per-frame oracle
        #: path -- the knob the E16 bench (and old-peer interop tests)
        #: turn.
        self.batch_enabled = batch_enabled
        self.wire_minor = TRUNK_MINOR if batch_enabled else 0
        self.jitter_depth_seconds = jitter_depth_seconds
        self.jitter_prime_seconds = jitter_prime_seconds
        self.retry = retry or RetryPolicy(attempts=1, base_delay=0.05,
                                          max_delay=2.0)
        self.connect_timeout = connect_timeout
        self.host: str | None = None
        self.port: int | None = None
        self._routes: list[TrunkRoute] = []
        self._accepted: list[TrunkLink] = []
        #: link -> {call_id -> leg}; all mutation happens on the tick
        #: thread or under _state_lock.
        self._legs: dict[TrunkLink, dict[int, _TrunkLeg]] = {}
        #: link -> [(call_id, seq, samples)] staged this flush window;
        #: touched only on the tick thread (deliver_audio runs inside
        #: the exchange's block cycle), so it needs no lock.
        self._stage: dict[TrunkLink, list] = {}
        self._state_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._started = False
        m = self.metrics
        self._m_frames_in = m.counter("trunk.frames_in")
        self._m_frames_out = m.counter("trunk.frames_out")
        self._m_signaling_in = m.counter("trunk.signaling_in")
        self._m_signaling_out = m.counter("trunk.signaling_out")
        self._m_connects = m.counter("trunk.connects")
        self._m_reconnects = m.counter("trunk.reconnects")
        self._m_setup_refused = m.counter("trunk.setup_refused")
        self._m_calls_in = m.counter("trunk.calls.inbound")
        self._m_calls_out = m.counter("trunk.calls.outbound")
        self._m_links = m.gauge("trunk.links")
        self._m_active = m.gauge("trunk.active_remote_calls")
        self._m_jitter_depth = m.gauge("trunk.jitter.depth_samples")
        self._m_late = m.counter("trunk.jitter.late_frames")
        self._m_lost = m.counter("trunk.jitter.lost_frames")
        self._m_underruns = m.counter("trunk.jitter.underruns")
        self._m_jitter_shed = m.counter("trunk.jitter.shed_samples")
        self._m_outbound_shed = m.counter("trunk.outbound.shed_audio_frames")
        self._m_batch_out = m.counter("trunk.batch.frames_out")
        self._m_batch_in = m.counter("trunk.batch.frames_in")
        self._m_batch_entries_out = m.counter("trunk.batch.entries_out")
        self._m_batch_entries_in = m.counter("trunk.batch.entries_in")
        self._m_sendalls = m.counter("trunk.link.sendalls")
        self._m_recvs = m.counter("trunk.link.recvs")
        self._gauge_ticks = 0
        exchange.add_trunk_resolver(self)
        exchange.add_party(self)

    # -- configuration --------------------------------------------------------

    def add_route(self, prefix: str, host: str, port: int) -> TrunkRoute:
        route = TrunkRoute(prefix, host, port)
        self._routes.append(route)
        if self._started:
            self._kick_route(route)
        return route

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Configure (and, if already started, open) the trunk listener."""
        self.host = host
        self.port = port
        if self._started:
            self._open_listener()

    @property
    def routes(self) -> list[TrunkRoute]:
        return list(self._routes)

    def build_jitter(self) -> JitterBuffer:
        rate = self.exchange.sample_rate
        return JitterBuffer(
            max_depth_samples=max(1, int(self.jitter_depth_seconds * rate)),
            prime_samples=max(0, int(self.jitter_prime_seconds * rate)))

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "TrunkGateway":
        if self._started:
            return self
        self._started = True
        self._running = True
        if self.host is not None:
            self._open_listener()
        for route in self._routes:
            self._kick_route(route)
        return self

    def stop(self) -> None:
        self._running = False
        self._started = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        for link in self._all_links():
            link.close()
        self.exchange.remove_trunk_resolver(self)
        self.exchange.remove_party(self)

    def _open_listener(self) -> None:
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port or 0))
        listener.listen(16)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="trunk-accept", daemon=True)
        self._accept_thread.start()

    def connected(self) -> bool:
        """Every configured route currently has a live link."""
        return all(route.live_link() is not None for route in self._routes)

    def wait_connected(self, timeout: float = 5.0) -> bool:
        """Wall-clock wait for every route to come up (tests, tools)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.connected():
                return True
            time.sleep(0.005)
        return self.connected()

    # -- resolver API (called by the exchange under its lock) -----------------

    def route_for(self, number: str) -> TrunkRoute | None:
        best = None
        for route in self._routes:
            if number.startswith(route.prefix):
                if best is None or len(route.prefix) > len(best.prefix):
                    best = route
        return best

    def outbound_leg(self, number: str) -> Line | None:
        """A fresh outbound leg for ``number``, if a route covers it."""
        route = self.route_for(number)
        if route is None:
            return None
        link = route.live_link()
        call_id = link.allocate_call_id() if link is not None else 0
        return RemoteLine(number, self.exchange, self, link, call_id)

    # -- leg registry ---------------------------------------------------------

    def register_outbound(self, leg: RemoteLine) -> None:
        with self._state_lock:
            self._legs.setdefault(leg.link, {})[leg.call_id] = leg
        self._m_calls_out.inc()
        self._m_active.set(self._leg_count())

    def deregister_leg(self, leg: _TrunkLeg) -> None:
        with self._state_lock:
            by_call = self._legs.get(leg.link)
            if by_call is not None and by_call.get(leg.call_id) is leg:
                del by_call[leg.call_id]
                if not by_call:
                    self._legs.pop(leg.link, None)
        self._fold_leg_stats(leg)
        self._m_active.set(self._leg_count())

    def _leg_count(self) -> int:
        with self._state_lock:
            return sum(len(by_call) for by_call in self._legs.values())

    # -- frames out -----------------------------------------------------------

    def send_on(self, link: TrunkLink | None, frame: TrunkFrame) -> None:
        if link is None or not link.alive:
            return
        # lock-ok: TrunkLink.send is a bounded queue handoff, not socket I/O
        if link.send(frame):
            if frame.type is FrameType.AUDIO:
                self._m_frames_out.inc()
            else:
                self._m_signaling_out.inc()

    def stage_audio(self, leg: _TrunkLeg, samples: np.ndarray) -> None:
        """Queue one leg's block for this window's AUDIO_BATCH flush.

        The sequence number is allocated here, at stage time, so bearer
        ordering per call matches the order the exchange routed it.
        Tick-thread only -- staging happens inside the block cycle.
        """
        seq = leg._seq_out
        leg._seq_out += 1
        self._stage.setdefault(leg.link, []).append(
            (leg.call_id, seq, np.asarray(samples, dtype=np.int16)))

    def _flush_staged(self) -> None:
        """Encode and ship every link's staged audio (tick thread).

        One ``np.concatenate`` + one mu-law table take covers every
        staged call on a link; the batch entries are zero-copy views
        into that single encode.
        """
        if not self._stage:
            return
        stage = self._stage
        self._stage = {}
        for link, entries in stage.items():
            if not link.alive:
                continue
            blocks = [samples for _call_id, _seq, samples in entries]
            pcm = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
            encoded = memoryview(mulaw_encode(pcm))
            batch = []
            position = 0
            for call_id, seq, samples in entries:
                length = len(samples)
                batch.append((call_id, seq,
                              encoded[position:position + length]))
                position += length
            accepted = link.send_batch(batch)
            if accepted:
                self._m_frames_out.inc(accepted)

    # -- the tick (runs inside the exchange's block cycle) --------------------

    def tick(self, frames: int) -> None:
        now = time.monotonic()
        self._reap_dead_links(now)
        for route in self._routes:
            if route.live_link() is None:
                self._kick_route(route, now)
        for link in self._all_links():
            while link.inbound:
                self._handle_frame(link, link.inbound.popleft())
        self._pump_audio(frames)
        # Everything local parties spoke this block cycle (plus transit
        # audio the pump just routed leg-to-leg) goes out as one batch
        # per link.
        self._flush_staged()
        self._update_gauges()

    def _all_links(self) -> list[TrunkLink]:
        with self._state_lock:
            links = [route.link for route in self._routes
                     if route.link is not None]
            links.extend(self._accepted)
        return links

    def _reap_dead_links(self, now: float) -> None:
        for link in self._all_links():
            if link.alive and link.stale(now):
                log.warning("trunk link %s stale (%.1fs silent): closing",
                            link.name, now - link.last_rx)
                link.close()
        with self._state_lock:
            dead_accepted = [link for link in self._accepted
                             if not link.alive]
            for link in dead_accepted:
                self._accepted.remove(link)
            dead_routed = [route.link for route in self._routes
                           if route.link is not None
                           and not route.link.alive]
        for link in dead_accepted + dead_routed:
            self._release_all_on(link, "trunk down")

    def _release_all_on(self, link: TrunkLink, reason: str) -> None:
        with self._state_lock:
            legs = list(self._legs.pop(link, {}).values())
        for leg in legs:
            self._fold_leg_stats(leg)
            leg.released = True
            if isinstance(leg, RemoteLine):
                leg.ringing = False
                self.exchange.remote_released(leg, reason)
            else:
                leg.remote_released(reason)
        if legs:
            self._m_active.set(self._leg_count())

    # -- route (re)connection -------------------------------------------------

    def _kick_route(self, route: TrunkRoute,
                    now: float | None = None) -> None:
        if not self._running:
            return
        reference = time.monotonic() if now is None else now
        with self._state_lock:
            if route.connecting or reference < route.next_attempt_at:
                return
            route.connecting = True
        threading.Thread(target=self._connect_route, args=(route,),
                         name="trunk-connect-%s" % route.prefix,
                         daemon=True).start()

    def _connect_route(self, route: TrunkRoute) -> None:
        local = Handshake(self.name, minor=self.wire_minor,
                          sample_rate=self.exchange.sample_rate)
        try:
            sock = socket.create_connection(
                (route.host, route.port), timeout=self.connect_timeout)
        except OSError as exc:
            self._connect_failed(route, str(exc))
            return
        try:
            sock.settimeout(self.connect_timeout)
            sock.sendall(local.encode())
            peer = Handshake.read_from(sock)
            problem = local.compatible_with(peer)
            if problem is not None:
                raise TrunkProtocolError(problem)
            sock.settimeout(None)
        except (OSError, ConnectionClosed, TrunkProtocolError) as exc:
            try:
                sock.close()
            except OSError:
                pass
            self._connect_failed(route, str(exc))
            return
        link = TrunkLink(sock, peer, initiated=True,
                         keepalive_interval=self.keepalive_interval,
                         outbound_bound=self.outbound_bound,
                         batching=(self.batch_enabled
                                   and peer.minor >= BATCH_MIN_MINOR)).start()
        with self._state_lock:
            route.link = link
            route.connecting = False
            route.attempt = 0
            reconnect = route.ever_connected
            route.ever_connected = True
        self._m_connects.inc()
        if reconnect:
            self._m_reconnects.inc()
        log.info("trunk route %s=%s:%d up (peer %r)", route.prefix,
                 route.host, route.port, peer.name)

    def _connect_failed(self, route: TrunkRoute, why: str) -> None:
        with self._state_lock:
            delay = self.retry.delay(
                min(route.attempt, _MAX_BACKOFF_EXPONENT))
            route.attempt += 1
            route.next_attempt_at = time.monotonic() + delay
            route.connecting = False
        log.debug("trunk route %s=%s:%d connect failed (%s); retry in "
                  "%.2fs", route.prefix, route.host, route.port, why, delay)

    # -- accepting ------------------------------------------------------------

    def _accept_loop(self) -> None:
        local = Handshake(self.name, minor=self.wire_minor,
                          sample_rate=self.exchange.sample_rate)
        while self._running:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break
            try:
                sock.settimeout(self.connect_timeout)
                peer = Handshake.read_from(sock)
                sock.sendall(local.encode())
                problem = local.compatible_with(peer)
                if problem is not None:
                    raise TrunkProtocolError(problem)
                sock.settimeout(None)
            except (OSError, ConnectionClosed, TrunkProtocolError) as exc:
                log.warning("refused trunk connection: %s", exc)
                self._m_setup_refused.inc()
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            link = TrunkLink(
                sock, peer, initiated=False,
                keepalive_interval=self.keepalive_interval,
                outbound_bound=self.outbound_bound,
                batching=(self.batch_enabled
                          and peer.minor >= BATCH_MIN_MINOR)).start()
            with self._state_lock:
                self._accepted.append(link)

    # -- frame handling (tick thread) -----------------------------------------

    def _leg_for(self, link: TrunkLink, call_id: int) -> _TrunkLeg | None:
        with self._state_lock:
            return self._legs.get(link, {}).get(call_id)

    def _handle_frame(self, link: TrunkLink, frame: TrunkFrame) -> None:
        if frame.type is FrameType.AUDIO:
            self._m_frames_in.inc()
            leg = self._leg_for(link, frame.call_id)
            if leg is not None:
                # Raw bytes go straight into the ring; decode happens
                # once per pop as a single table take.
                leg.jitter.push(frame.seq, frame.payload)
            return
        if frame.type is FrameType.AUDIO_BATCH:
            entries = frame.entries
            self._m_frames_in.inc(len(entries))
            self._m_batch_in.inc()
            self._m_batch_entries_in.inc(len(entries))
            with self._state_lock:
                by_call = dict(self._legs.get(link, {}))
            for call_id, seq, payload in entries:
                leg = by_call.get(call_id)
                if leg is not None:
                    leg.jitter.push(seq, payload)
            return
        self._m_signaling_in.inc()
        if frame.type is FrameType.SETUP:
            self._handle_setup(link, frame)
            return
        leg = self._leg_for(link, frame.call_id)
        if leg is None:
            return
        if frame.type is FrameType.ALERTING:
            leg.alerting = True
        elif frame.type is FrameType.ANSWER:
            if isinstance(leg, RemoteLine):
                leg.remote_answered()
        elif frame.type is FrameType.RELEASE:
            self.deregister_leg(leg)
            leg.remote_released(frame.reason)
        elif frame.type is FrameType.DTMF:
            self.exchange.route_dtmf(leg, frame.digits)

    def _handle_setup(self, link: TrunkLink, frame: TrunkFrame) -> None:
        if self._leg_for(link, frame.call_id) is not None:
            log.warning("trunk link %s: duplicate call id %d in SETUP",
                        link.name, frame.call_id)
            self.send_on(link, TrunkFrame(FrameType.RELEASE, frame.call_id,
                                          reason="duplicate call id"))
            return
        leg = InboundLeg(frame.caller_id or "unknown", self.exchange,
                         self, link, frame.call_id)
        with self._state_lock:
            self._legs.setdefault(link, {})[frame.call_id] = leg
        self._m_calls_in.inc()
        self._m_active.set(self._leg_count())
        self.exchange.dial(leg, frame.number,
                           forwarded_from=frame.forwarded_from or None)
        if self.exchange.call_for(leg) is not None:
            self.send_on(link, TrunkFrame(FrameType.ALERTING,
                                          frame.call_id))
        # else: dial already failed the call; the leg's call_failed sent
        # the RELEASE and deregistered itself.

    # -- bearer pump ----------------------------------------------------------

    def _pump_audio(self, frames: int) -> None:
        with self._state_lock:
            legs = [leg for by_call in self._legs.values()
                    for leg in by_call.values()]
        from ..telephony.call import CallState

        # Legs with nothing buffered (never primed) are skipped outright
        # -- routing explicit silence and routing nothing sound
        # identical to the far side, and a 256-call link's quiet
        # direction would otherwise pay the whole pump for zeros.
        # Each entry pairs the leg with its (already state-checked) call
        # so delivery below can go straight to the far party instead of
        # re-resolving through exchange.route_audio.
        voiced = [(leg, call) for leg in legs
                  if leg.jitter.poppable()
                  and (call := self.exchange.call_for(leg)) is not None
                  and call.state is CallState.CONNECTED]
        if not voiced:
            return
        if len(voiced) == 1:
            leg, call = voiced[0]
            call.other_party(leg).deliver_audio(leg.jitter.pop(frames))
            return
        # Vector path: assemble every leg's raw mu-law window, decode
        # the lot in ONE table take, hand each leg its slice.  Each
        # jitter buffer owns its pop scratch, so the gathered views stay
        # valid until the join copies them.
        raw = b"".join(leg.jitter.pop_raw(frames) for leg, _ in voiced)
        decoded = np.take(MULAW_DECODE_TABLE,
                          np.frombuffer(raw, dtype=np.uint8))
        for index, (leg, call) in enumerate(voiced):
            call.other_party(leg).deliver_audio(
                decoded[index * frames:(index + 1) * frames])

    # -- metric folding -------------------------------------------------------

    def _fold(self, obj, attr: str, counter) -> None:
        current = getattr(obj, attr)
        folded_attr = "_folded_" + attr
        previous = getattr(obj, folded_attr, 0)
        if current > previous:
            counter.inc(current - previous)
            setattr(obj, folded_attr, current)

    def _fold_leg_stats(self, leg: _TrunkLeg) -> None:
        jitter = leg.jitter
        self._fold(jitter, "late_frames", self._m_late)
        self._fold(jitter, "lost_frames", self._m_lost)
        self._fold(jitter, "underruns", self._m_underruns)
        self._fold(jitter, "shed_samples", self._m_jitter_shed)

    def _update_gauges(self) -> None:
        links = [link for link in self._all_links() if link.alive]
        self._m_links.set(len(links))
        for link in links:
            self._fold(link, "shed_audio_frames", self._m_outbound_shed)
            self._fold(link, "sendalls", self._m_sendalls)
            self._fold(link, "recvs", self._m_recvs)
            self._fold(link, "batch_frames_out", self._m_batch_out)
            self._fold(link, "batch_entries_out", self._m_batch_entries_out)
        # The per-leg pass (jitter counter folds + depth/active gauges)
        # walks every leg; at hundreds of calls per link that walk costs
        # more than the bearer pump, so it runs every Nth tick.  Final
        # values stay exact: deregister/release fold each leg on the way
        # out.
        self._gauge_ticks += 1
        if (self._gauge_ticks - 1) % GAUGE_LEG_TICKS:
            return
        with self._state_lock:
            legs = [leg for by_call in self._legs.values()
                    for leg in by_call.values()]
        for leg in legs:
            self._fold_leg_stats(leg)
        self._m_jitter_depth.set(
            sum(leg.jitter.depth_samples for leg in legs))
        self._m_active.set(len(legs))

    # -- introspection (tests, stats) -----------------------------------------

    def buffered_audio_samples(self) -> int:
        """Total audio queued in every leg's jitter buffer right now."""
        with self._state_lock:
            legs = [leg for by_call in self._legs.values()
                    for leg in by_call.values()]
        return sum(leg.jitter.depth_samples for leg in legs)

    def live_link_count(self) -> int:
        return len([link for link in self._all_links() if link.alive])


# read_frame is re-exported for tests that speak raw trunk protocol.
__all__ = ["InboundLeg", "RemoteLine", "TrunkGateway", "TrunkRoute",
           "parse_route", "read_frame"]
