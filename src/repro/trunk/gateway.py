"""The trunk gateway: one exchange's window onto its peers.

A :class:`TrunkGateway` federates the local
:class:`~repro.telephony.exchange.TelephoneExchange` with the exchanges
of other audio servers over TCP trunk links, presenting remote calls as
ordinary Line-compatible endpoints so every exchange semantic -- busy
treatment, no-answer timers, forwarding, caller ID, hangup supervision
-- works unchanged end to end:

* an **outbound leg** (:class:`RemoteLine`) fronts a remote *callee*:
  ringing it sends SETUP down the route's link, and ANSWER / RELEASE
  frames come back as answer / failure signaling;
* an **inbound leg** (:class:`InboundLeg`) fronts the remote *caller*:
  a SETUP frame dials the local number exactly as a local line would,
  and local signaling (answered, busy, hangup) flows back as frames.

Routing starts from a static longest-prefix table (``--trunk-route
PREFIX=host:port``): numbers no local line owns are matched against the
table when dialed or forwarded.  Each route owns at most one link,
reconnected after loss with the Alib
:class:`~repro.alib.connection.RetryPolicy` backoff (attempted from
short-lived connector threads; the tick never blocks).  Bearer audio is
carried as sequence-numbered mu-law frames through a per-call
:class:`~repro.trunk.jitter.JitterBuffer` on the receiving side.

:meth:`TrunkGateway.enable_mesh` adds the dynamic routing plane on top
(docs/TELEPHONY.md, "Mesh routing"): peers are discovered through a
registry (``trunk/discovery.py``) instead of being wired by hand,
reachability propagates as ROUTE_ADVERT frames into a per-gateway
:class:`~repro.trunk.routing.RouteTable`, and calls for a prefix owned
two hops away are *tandem switched* -- the inbound leg is bridged to a
fresh outbound leg over another trunk, with the SETUP2 ``via`` trail
refusing loops, a hop-count ceiling, and dial-time failover to the
next-best route when the preferred next hop is down or refuses.  Static
routes stay as an override: a static prefix at least as specific as the
best mesh match dials first, with mesh paths as backup.

All signaling and bearer handling runs in :meth:`tick`, which the
exchange drives inside the audio block cycle -- link reader threads only
park parsed frames, so exchange state is mutated under one clock (and,
on a server, under the topology lock).  On link loss every call riding
the link is released mid-call on both sides within a tick.
"""

from __future__ import annotations

import logging
import socket
import threading
import time

import numpy as np

from ..alib.connection import RetryPolicy
from ..dsp.encodings import MULAW_DECODE_TABLE, mulaw_encode
from ..obs import NULL_REGISTRY
from ..protocol.wire import ConnectionClosed
from ..telephony.line import HookState, Line
from .discovery import (
    DEFAULT_POLL_INTERVAL,
    DEFAULT_REGISTRY_TTL,
    MeshDiscovery,
    MeshRegistry,
    PeerRecord,
)
from .jitter import JitterBuffer
from .link import (
    DEFAULT_KEEPALIVE_INTERVAL,
    DEFAULT_OUTBOUND_BOUND,
    TrunkLink,
)
from .routing import DEFAULT_MAX_HOPS, RouteTable
from .wire import BATCH_MIN_MINOR, MAX_ADVERT_ENTRIES, MESH_MIN_MINOR, \
    TRUNK_MINOR, UNREACHABLE_HOPS, FrameType, Handshake, TrunkFrame, \
    TrunkProtocolError, read_frame

log = logging.getLogger(__name__)

#: Cap on the exponential backoff exponent (RetryPolicy caps the delay
#: itself; this just keeps ``multiplier ** attempt`` bounded).
_MAX_BACKOFF_EXPONENT = 16

#: RELEASE reasons that mean "this *path* failed", not "the callee
#: declined": a still-ringing outbound leg retries its next candidate
#: route instead of failing the call.
RETRYABLE_RELEASES = frozenset({
    "trunk down", "routing loop", "max hops exceeded",
})

#: Cadence (in ticks) of the per-leg gauge pass: jitter counter folds
#: plus the depth/active gauges.  160 ms at the 20 ms block cycle --
#: fresh enough for stats consumers, invisible to the bearer path.
GAUGE_LEG_TICKS = 8


def parse_route(text: str) -> tuple[str, str, int]:
    """Parse a ``PREFIX=host:port`` route argument."""
    prefix, _, endpoint = text.partition("=")
    host, _, port = endpoint.rpartition(":")
    if not prefix or not host or not port.isdigit():
        raise ValueError("route must look like PREFIX=host:port: %r" % text)
    return prefix, host, int(port)


class TrunkRoute:
    """One static route: a number prefix homed at a peer gateway."""

    def __init__(self, prefix: str, host: str, port: int) -> None:
        self.prefix = prefix
        self.host = host
        self.port = port
        self.link: TrunkLink | None = None
        self.connecting = False
        self.attempt = 0
        self.next_attempt_at = 0.0
        self.ever_connected = False

    def live_link(self) -> TrunkLink | None:
        link = self.link
        if link is not None and link.alive:
            return link
        return None


class MeshPeer:
    """One discovered gateway and (at most) the link we initiate to it.

    Duck-types :class:`TrunkRoute`'s connection-state surface (host,
    port, link, backoff fields) so the gateway's connector machinery
    drives both; the address comes from the peer's latest registry
    record rather than a static flag.
    """

    def __init__(self, record: PeerRecord) -> None:
        self.record = record
        self.link: TrunkLink | None = None
        self.connecting = False
        self.attempt = 0
        self.next_attempt_at = 0.0
        self.ever_connected = False

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def host(self) -> str:
        return self.record.host

    @property
    def port(self) -> int:
        return self.record.port

    @property
    def prefix(self) -> str:
        # Label used by the shared connector logging/thread naming.
        return "mesh:%s" % self.record.name

    def live_link(self) -> TrunkLink | None:
        link = self.link
        if link is not None and link.alive:
            return link
        return None


class _AdvertState:
    """What one link has been told about the route table so far."""

    __slots__ = ("version", "sent")

    def __init__(self) -> None:
        self.version = -1
        #: (prefix, origin) -> (hops, seq) as last advertised.
        self.sent: dict = {}


class _TrunkLeg(Line):
    """Line-compatible endpoint fronting the far side of a trunk call."""

    def __init__(self, number: str, exchange, gateway: "TrunkGateway",
                 link: TrunkLink | None, call_id: int) -> None:
        super().__init__(number, exchange)
        self.gateway = gateway
        self.link = link
        self.call_id = call_id
        self.alerting = False
        self.released = False
        self.jitter = gateway.build_jitter()
        self._seq_out = 0

    # -- frames out -----------------------------------------------------------

    def _send(self, frame: TrunkFrame) -> None:
        self.gateway.send_on(self.link, frame)

    def _send_release(self, reason: str) -> None:
        if self.released:
            return
        self.released = True
        self._send(TrunkFrame(FrameType.RELEASE, self.call_id,
                              reason=reason))
        self.gateway.deregister_leg(self)

    # -- exchange-facing audio/signaling overrides ----------------------------

    def deliver_audio(self, samples: np.ndarray) -> None:
        """The local party spoke: relay the block as bearer audio.

        On a batching link the block is *staged*: the gateway's tick
        encodes every staged call's audio for this window in one table
        take and ships it as a single AUDIO_BATCH.  Old-minor links get
        the per-frame encode + AUDIO frame, exactly as before the batch
        path existed.
        """
        link = self.link
        if link is not None and link.alive and link.batching:
            self.gateway.stage_audio(self, samples)
            return
        payload = mulaw_encode(np.asarray(samples, dtype=np.int16))
        frame = TrunkFrame(FrameType.AUDIO, self.call_id,
                           seq=self._seq_out, payload=payload)
        self._seq_out += 1
        self._send(frame)

    def deliver_dtmf(self, digits: str) -> None:
        """The local party pressed keys: relay them as signaling."""
        self._send(TrunkFrame(FrameType.DTMF, self.call_id, digits=digits))


class RemoteLine(_TrunkLeg):
    """Outbound leg: the remote *callee* as seen by the local exchange.

    The leg carries an ordered list of candidate links (best route
    first).  Ringing dials the first live one; a path failure -- the
    link dying mid-dial, or the next hop releasing with a retryable
    reason like ``routing loop`` or ``trunk down`` -- fails over to the
    next candidate before the call itself is failed.
    """

    def __init__(self, number: str, exchange, gateway: "TrunkGateway",
                 link: TrunkLink | None, call_id: int, *,
                 candidates=()) -> None:
        super().__init__(number, exchange, gateway, link, call_id)
        self._candidates: list[TrunkLink] = list(candidates)
        self._via: tuple = ()
        self._hops = 0
        self._tandem = False
        self._upstream_link: TrunkLink | None = None
        self._attempted = False

    def start_ringing(self, caller_info) -> None:
        self.ringing = True
        self.caller_info = caller_info
        call = self.exchange.call_for(self)
        upstream = call.caller if call is not None else None
        if isinstance(upstream, InboundLeg):
            # Tandem switch: the caller is itself a trunk leg, so this
            # dial continues a path.  Inherit the loop-prevention trail
            # and never route back out the trunk the call came in on.
            self._via = upstream.via
            self._hops = upstream.hops + 1
            self._upstream_link = upstream.link
            self._tandem = True
        if not self._dial_next():
            # No live candidate: fail the call instead of ringing into
            # the void.  The call is already registered, so the release
            # path works synchronously from inside dial().
            self.ringing = False
            self.released = True
            self.gateway.deregister_leg(self)
            self.exchange.remote_released(self, "trunk down")
            return
        if self._tandem:
            self.gateway._m_tandem.inc()

    def _dial_next(self) -> bool:
        """Send SETUP down the next viable candidate; False when none
        is left (dead links and via-listed next hops are skipped)."""
        while self._candidates:
            link = self._candidates.pop(0)
            if not link.alive or link.name in self._via:
                continue
            if link is self._upstream_link:
                continue
            first = not self._attempted
            self._attempted = True
            self.link = link
            self.call_id = link.allocate_call_id()
            self.gateway.register_outbound(self, first=first)
            self._send_setup(link)
            return True
        return False

    def _send_setup(self, link: TrunkLink) -> None:
        info = self.caller_info
        if link.mesh and self.gateway.mesh_enabled:
            self._send(TrunkFrame(
                FrameType.SETUP2, self.call_id, number=self.number,
                caller_id=info.number,
                forwarded_from=info.forwarded_from or "",
                hops=self._hops,
                via=self._via + (self.gateway.name,)))
        else:
            self._send(TrunkFrame(
                FrameType.SETUP, self.call_id, number=self.number,
                caller_id=info.number,
                forwarded_from=info.forwarded_from or ""))

    def failover(self, reason: str) -> bool:
        """Mid-dial path failure: retry the next-best route.

        Only a still-ringing leg fails over (an answered call's path
        death is a real mid-call drop), and only for path-shaped
        reasons -- busy or no-such-number came from the destination
        itself and must not be retried elsewhere.
        """
        if not self.ringing or reason not in RETRYABLE_RELEASES:
            return False
        if not self._dial_next():
            return False
        self.gateway._m_failovers.inc()
        return True

    def stop_ringing(self) -> None:
        """The caller abandoned (or a timer fired) while we alerted."""
        if self.ringing:
            self.ringing = False
            self._send_release("abandoned")

    def far_end_hung_up(self) -> None:
        """The local caller hung up on the connected call."""
        self._send_release("hangup")

    # Called by the gateway when the matching frames arrive.

    def remote_answered(self) -> None:
        self.ringing = False
        self.hook = HookState.OFF_HOOK
        self.exchange.line_off_hook(self)

    def remote_released(self, reason: str) -> None:
        if self.failover(reason):
            return
        self.ringing = False
        self.released = True
        self.exchange.remote_released(self, reason or "released")


class InboundLeg(_TrunkLeg):
    """Inbound leg: the remote *caller* as seen by the local exchange."""

    def __init__(self, number: str, exchange, gateway: "TrunkGateway",
                 link: TrunkLink, call_id: int) -> None:
        super().__init__(number, exchange, gateway, link, call_id)
        self.hook = HookState.OFF_HOOK    # the remote caller is off hook
        #: Tandem context from SETUP2 (empty/zero for plain SETUP): the
        #: gateways this call has already left, and how many trunk hops
        #: it has crossed.  A tandem dial onward inherits both.
        self.via: tuple = ()
        self.hops = 0

    def far_end_answered(self) -> None:
        self._send(TrunkFrame(FrameType.ANSWER, self.call_id))

    def far_end_hung_up(self) -> None:
        """The local callee hung up the connected call."""
        self._send_release("hangup")

    def call_failed(self, reason: str) -> None:
        """The local dial failed (busy, bad number, no answer...)."""
        self._send_release(reason)

    def remote_released(self, reason: str) -> None:
        """The remote caller went away: hang this leg up locally."""
        self.released = True
        if self.hook is HookState.OFF_HOOK:
            self.on_hook()


class TrunkGateway:
    """Federates the local exchange with remote peers over trunk links."""

    def __init__(self, exchange, *, name: str = "",
                 metrics=None,
                 keepalive_interval: float = DEFAULT_KEEPALIVE_INTERVAL,
                 outbound_bound: int = DEFAULT_OUTBOUND_BOUND,
                 jitter_depth_seconds: float = 0.32,
                 jitter_prime_seconds: float = 0.04,
                 retry: RetryPolicy | None = None,
                 connect_timeout: float = 2.0,
                 batch_enabled: bool = True) -> None:
        self.exchange = exchange
        self.name = name or "trunk-gateway"
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.keepalive_interval = keepalive_interval
        self.outbound_bound = outbound_bound
        #: Whether this gateway offers the AUDIO_BATCH fast path.  Off,
        #: it announces minor 0 and every link runs the per-frame oracle
        #: path -- the knob the E16 bench (and old-peer interop tests)
        #: turn.
        self.batch_enabled = batch_enabled
        self.wire_minor = TRUNK_MINOR if batch_enabled else 0
        self.jitter_depth_seconds = jitter_depth_seconds
        self.jitter_prime_seconds = jitter_prime_seconds
        self.retry = retry or RetryPolicy(attempts=1, base_delay=0.05,
                                          max_delay=2.0)
        self.connect_timeout = connect_timeout
        self.host: str | None = None
        self.port: int | None = None
        self._routes: list[TrunkRoute] = []
        self._accepted: list[TrunkLink] = []
        #: The dynamic routing plane (off until enable_mesh): the route
        #: table always exists so lookup code never branches on None.
        self.mesh_enabled = False
        self.table = RouteTable(self.name)
        self._mesh_peers: dict[str, MeshPeer] = {}
        self._mesh_neighbors: frozenset[str] | None = None
        self._mesh_advertise: tuple[str, int] | None = None
        self._registry: MeshRegistry | None = None
        self._discovery: MeshDiscovery | None = None
        self._seen_generation = 0
        #: link -> _AdvertState: what each mesh link was last told.
        self._advertised: dict[TrunkLink, _AdvertState] = {}
        #: link -> {call_id -> leg}; all mutation happens on the tick
        #: thread or under _state_lock.
        self._legs: dict[TrunkLink, dict[int, _TrunkLeg]] = {}
        #: link -> [(call_id, seq, samples)] staged this flush window;
        #: touched only on the tick thread (deliver_audio runs inside
        #: the exchange's block cycle), so it needs no lock.
        self._stage: dict[TrunkLink, list] = {}
        self._state_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._started = False
        m = self.metrics
        self._m_frames_in = m.counter("trunk.frames_in")
        self._m_frames_out = m.counter("trunk.frames_out")
        self._m_signaling_in = m.counter("trunk.signaling_in")
        self._m_signaling_out = m.counter("trunk.signaling_out")
        self._m_connects = m.counter("trunk.connects")
        self._m_reconnects = m.counter("trunk.reconnects")
        self._m_setup_refused = m.counter("trunk.setup_refused")
        self._m_calls_in = m.counter("trunk.calls.inbound")
        self._m_calls_out = m.counter("trunk.calls.outbound")
        self._m_links = m.gauge("trunk.links")
        self._m_active = m.gauge("trunk.active_remote_calls")
        self._m_jitter_depth = m.gauge("trunk.jitter.depth_samples")
        self._m_late = m.counter("trunk.jitter.late_frames")
        self._m_lost = m.counter("trunk.jitter.lost_frames")
        self._m_underruns = m.counter("trunk.jitter.underruns")
        self._m_jitter_shed = m.counter("trunk.jitter.shed_samples")
        self._m_outbound_shed = m.counter("trunk.outbound.shed_audio_frames")
        self._m_batch_out = m.counter("trunk.batch.frames_out")
        self._m_batch_in = m.counter("trunk.batch.frames_in")
        self._m_batch_entries_out = m.counter("trunk.batch.entries_out")
        self._m_batch_entries_in = m.counter("trunk.batch.entries_in")
        self._m_sendalls = m.counter("trunk.link.sendalls")
        self._m_recvs = m.counter("trunk.link.recvs")
        self._m_adverts_in = m.counter("trunk.route.adverts_in")
        self._m_adverts_out = m.counter("trunk.route.adverts_out")
        self._m_withdrawn = m.counter("trunk.route.withdrawn")
        self._m_loop_refused = m.counter("trunk.route.loop_refused")
        self._m_hop_refused = m.counter("trunk.route.hop_refused")
        self._m_failovers = m.counter("trunk.route.failovers")
        self._m_tandem = m.counter("trunk.route.tandem_calls")
        self._m_route_entries = m.gauge("trunk.route.entries")
        self._m_mesh_peers = m.gauge("mesh.peers")
        self._m_polls = m.counter("mesh.discovery.polls")
        self._m_poll_failures = m.counter("mesh.discovery.poll_failures")
        self._m_registrations = m.counter("mesh.registry.registrations")
        self._m_reg_expired = m.counter("mesh.registry.expired")
        self._gauge_ticks = 0
        exchange.add_trunk_resolver(self)
        exchange.add_party(self)

    # -- configuration --------------------------------------------------------

    def add_route(self, prefix: str, host: str, port: int) -> TrunkRoute:
        route = TrunkRoute(prefix, host, port)
        self._routes.append(route)
        if self._started:
            self._kick_route(route)
        return route

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Configure (and, if already started, open) the trunk listener."""
        self.host = host
        self.port = port
        if self._started:
            self._open_listener()

    @property
    def routes(self) -> list[TrunkRoute]:
        return list(self._routes)

    def enable_mesh(self, *, registry: tuple[str, int] | None = None,
                    serve_registry: tuple[str, int] | None = None,
                    prefixes=(),
                    neighbors=None,
                    advertise: tuple[str, int] | None = None,
                    poll_interval: float = DEFAULT_POLL_INTERVAL,
                    registry_ttl: float = DEFAULT_REGISTRY_TTL,
                    max_hops: int = DEFAULT_MAX_HOPS) -> None:
        """Join the dynamic routing mesh (docs/TELEPHONY.md).

        ``registry`` is the host/port of the fleet's registry endpoint;
        ``serve_registry`` makes *this* node host it (a node may do
        both -- the registry host registers with itself when
        ``registry`` is omitted).  ``prefixes`` are the number prefixes
        this exchange originates.  ``neighbors`` restricts which
        discovered peers this node *initiates* links to (topology
        policy; None links to every peer, deduplicated by name order so
        two nodes never cross-connect).  ``advertise`` overrides the
        trunk listener address published to the registry -- e.g. when
        peers must reach it through a proxy or NAT.

        Gateway names must be unique across the mesh: the name is the
        registry key, the route-advert origin, and the SETUP2 via-list
        entry that makes loop prevention work.
        """
        self.mesh_enabled = True
        self.table.max_hops = max_hops
        for prefix in prefixes:
            self.table.add_local(prefix)
        if neighbors is not None:
            self._mesh_neighbors = frozenset(neighbors)
        self._mesh_advertise = advertise
        if serve_registry is not None:
            self._registry = MeshRegistry(serve_registry[0],
                                          serve_registry[1],
                                          ttl=registry_ttl)
        registry_addr = registry
        if registry_addr is None and serve_registry is not None:
            registry_addr = serve_registry
        if registry_addr is not None:
            self._discovery = MeshDiscovery(
                registry_addr, self._mesh_record, interval=poll_interval)
        if self.host is None:
            # A mesh node must accept trunks from its peers; pick an
            # ephemeral listener unless one was configured explicitly.
            self.listen()
        if self._started:
            self._start_mesh()

    def _mesh_record(self) -> PeerRecord:
        """This node's registration (called by the discovery poller)."""
        if self._mesh_advertise is not None:
            host, port = self._mesh_advertise
        else:
            host, port = self.host or "127.0.0.1", self.port or 0
        return PeerRecord(self.name, host, port,
                          self.table.local_prefixes)

    def _start_mesh(self) -> None:
        if self._registry is not None:
            self._registry.start()
            if (self._discovery is not None
                    and self._discovery.registry[1] == 0):
                # Registering with our own just-bound registry: the
                # ephemeral port is only known now.
                self._discovery.registry = (self._registry.host,
                                            self._registry.port)
        if self._discovery is not None:
            self._discovery.start()

    def build_jitter(self) -> JitterBuffer:
        rate = self.exchange.sample_rate
        return JitterBuffer(
            max_depth_samples=max(1, int(self.jitter_depth_seconds * rate)),
            prime_samples=max(0, int(self.jitter_prime_seconds * rate)))

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "TrunkGateway":
        if self._started:
            return self
        self._started = True
        self._running = True
        if self.host is not None:
            self._open_listener()
        if self.mesh_enabled:
            self._start_mesh()
        for route in self._routes:
            self._kick_route(route)
        return self

    def stop(self) -> None:
        self._running = False
        self._started = False
        if self._discovery is not None:
            self._discovery.stop()
        if self._registry is not None:
            self._registry.stop()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        for link in self._all_links():
            link.close()
        self.exchange.remove_trunk_resolver(self)
        self.exchange.remove_party(self)

    def _open_listener(self) -> None:
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port or 0))
        listener.listen(16)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="trunk-accept", daemon=True)
        self._accept_thread.start()

    def connected(self) -> bool:
        """Every configured route currently has a live link."""
        return all(route.live_link() is not None for route in self._routes)

    def wait_connected(self, timeout: float = 5.0) -> bool:
        """Wall-clock wait for every route to come up (tests, tools)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.connected():
                return True
            time.sleep(0.005)
        return self.connected()

    # -- resolver API (called by the exchange under its lock) -----------------

    def route_for(self, number: str) -> TrunkRoute | None:
        best = None
        for route in self._routes:
            if number.startswith(route.prefix):
                if best is None or len(route.prefix) > len(best.prefix):
                    best = route
        return best

    def outbound_leg(self, number: str) -> Line | None:
        """A fresh outbound leg for ``number``, if any route covers it.

        The leg carries every viable path, ordered: the static route
        wins when its prefix is at least as specific as the best mesh
        match (``--trunk-route`` stays an override), then mesh
        candidates by hop count.  Only *live* links become candidates
        -- a prefix whose every next hop is dead still resolves (so the
        failure is "trunk down", not "no such number") but the dial
        fails fast instead of queueing into a dead link.
        """
        route = self.route_for(number)
        static_len = len(route.prefix) if route is not None else -1
        mesh_links: list[TrunkLink] = []
        mesh_live_len = -1
        mesh_known_len = -1
        if self.mesh_enabled:
            mesh_links, mesh_live_len = self.table.candidates(number)
            mesh_known_len = self.table.remote_match_len(number)
        if route is None and mesh_known_len < 0:
            return None
        candidates: list[TrunkLink] = []
        static_link = route.live_link() if route is not None else None
        if static_len >= max(mesh_live_len, mesh_known_len):
            if static_link is not None:
                candidates.append(static_link)
            candidates += [link for link in mesh_links
                           if link is not static_link]
        else:
            candidates = list(mesh_links)
            if static_link is not None and static_link not in candidates:
                candidates.append(static_link)
        link = candidates[0] if candidates else None
        return RemoteLine(number, self.exchange, self, link, 0,
                          candidates=candidates)

    # -- leg registry ---------------------------------------------------------

    def register_outbound(self, leg: RemoteLine, *,
                          first: bool = True) -> None:
        with self._state_lock:
            self._legs.setdefault(leg.link, {})[leg.call_id] = leg
        if first:
            self._m_calls_out.inc()
        self._m_active.set(self._leg_count())

    def deregister_leg(self, leg: _TrunkLeg) -> None:
        with self._state_lock:
            by_call = self._legs.get(leg.link)
            if by_call is not None and by_call.get(leg.call_id) is leg:
                del by_call[leg.call_id]
                if not by_call:
                    self._legs.pop(leg.link, None)
        self._fold_leg_stats(leg)
        self._m_active.set(self._leg_count())

    def _leg_count(self) -> int:
        with self._state_lock:
            return sum(len(by_call) for by_call in self._legs.values())

    # -- frames out -----------------------------------------------------------

    def send_on(self, link: TrunkLink | None, frame: TrunkFrame) -> None:
        if link is None or not link.alive:
            return
        # lock-ok: TrunkLink.send is a bounded queue handoff, not socket I/O
        if link.send(frame):
            if frame.type is FrameType.AUDIO:
                self._m_frames_out.inc()
            else:
                self._m_signaling_out.inc()

    def stage_audio(self, leg: _TrunkLeg, samples: np.ndarray) -> None:
        """Queue one leg's block for this window's AUDIO_BATCH flush.

        The sequence number is allocated here, at stage time, so bearer
        ordering per call matches the order the exchange routed it.
        Tick-thread only -- staging happens inside the block cycle.
        """
        seq = leg._seq_out
        leg._seq_out += 1
        self._stage.setdefault(leg.link, []).append(
            (leg.call_id, seq, np.asarray(samples, dtype=np.int16)))

    def _flush_staged(self) -> None:
        """Encode and ship every link's staged audio (tick thread).

        One ``np.concatenate`` + one mu-law table take covers every
        staged call on a link; the batch entries are zero-copy views
        into that single encode.
        """
        if not self._stage:
            return
        stage = self._stage
        self._stage = {}
        for link, entries in stage.items():
            if not link.alive:
                continue
            blocks = [samples for _call_id, _seq, samples in entries]
            pcm = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
            encoded = memoryview(mulaw_encode(pcm))
            batch = []
            position = 0
            for call_id, seq, samples in entries:
                length = len(samples)
                batch.append((call_id, seq,
                              encoded[position:position + length]))
                position += length
            accepted = link.send_batch(batch)
            if accepted:
                self._m_frames_out.inc(accepted)

    # -- the tick (runs inside the exchange's block cycle) --------------------

    def tick(self, frames: int) -> None:
        now = time.monotonic()
        self._reap_dead_links(now)
        for route in self._routes:
            if route.live_link() is None:
                self._kick_route(route, now)
        if self.mesh_enabled:
            self._mesh_tick(now)
        for link in self._all_links():
            while link.inbound:
                self._handle_frame(link, link.inbound.popleft())
        self._pump_audio(frames)
        # Everything local parties spoke this block cycle (plus transit
        # audio the pump just routed leg-to-leg) goes out as one batch
        # per link.
        self._flush_staged()
        if self.mesh_enabled:
            self._flush_adverts()
        self._update_gauges()

    def _all_links(self) -> list[TrunkLink]:
        with self._state_lock:
            links = [route.link for route in self._routes
                     if route.link is not None]
            links.extend(peer.link for peer in self._mesh_peers.values()
                         if peer.link is not None)
            links.extend(self._accepted)
        return links

    def _reap_dead_links(self, now: float) -> None:
        for link in self._all_links():
            if link.alive and link.stale(now):
                log.warning("trunk link %s stale (%.1fs silent): closing",
                            link.name, now - link.last_rx)
                link.close()
        with self._state_lock:
            dead_accepted = [link for link in self._accepted
                             if not link.alive]
            for link in dead_accepted:
                self._accepted.remove(link)
            dead_routed = [route.link for route in self._routes
                           if route.link is not None
                           and not route.link.alive]
            dead_mesh = [peer.link for peer in self._mesh_peers.values()
                         if peer.link is not None
                         and not peer.link.alive]
        for link in dead_accepted + dead_routed + dead_mesh:
            if self.mesh_enabled:
                # Withdraw everything the dead link taught us *before*
                # releasing legs: a failover dial inside the release
                # must not re-select the dead path, and the version
                # bump makes the advert flush propagate withdrawals.
                lost = self.table.withdraw_link(link)
                if lost:
                    log.info("trunk link %s down: withdrew %d route(s)",
                             link.name, len(lost))
                self._advertised.pop(link, None)
            self._release_all_on(link, "trunk down")

    def _release_all_on(self, link: TrunkLink, reason: str) -> None:
        with self._state_lock:
            legs = list(self._legs.pop(link, {}).values())
        for leg in legs:
            self._fold_leg_stats(leg)
            if isinstance(leg, RemoteLine):
                # A ringing outbound leg whose path just died retries
                # its next-best candidate before the call is failed.
                if leg.failover(reason):
                    continue
                leg.released = True
                leg.ringing = False
                self.exchange.remote_released(leg, reason)
            else:
                leg.released = True
                leg.remote_released(reason)
        if legs:
            self._m_active.set(self._leg_count())

    # -- route (re)connection -------------------------------------------------

    def _kick_route(self, route: TrunkRoute,
                    now: float | None = None) -> None:
        if not self._running:
            return
        reference = time.monotonic() if now is None else now
        with self._state_lock:
            if route.connecting or reference < route.next_attempt_at:
                return
            route.connecting = True
        threading.Thread(target=self._connect_route, args=(route,),
                         name="trunk-connect-%s" % route.prefix,
                         daemon=True).start()

    def _connect_route(self, route: TrunkRoute) -> None:
        local = Handshake(self.name, minor=self.wire_minor,
                          sample_rate=self.exchange.sample_rate)
        try:
            sock = socket.create_connection(
                (route.host, route.port), timeout=self.connect_timeout)
        except OSError as exc:
            self._connect_failed(route, str(exc))
            return
        try:
            sock.settimeout(self.connect_timeout)
            sock.sendall(local.encode())
            peer = Handshake.read_from(sock)
            problem = local.compatible_with(peer)
            if problem is not None:
                raise TrunkProtocolError(problem)
            sock.settimeout(None)
        except (OSError, ConnectionClosed, TrunkProtocolError) as exc:
            try:
                sock.close()
            except OSError:
                pass
            self._connect_failed(route, str(exc))
            return
        link = TrunkLink(sock, peer, initiated=True,
                         keepalive_interval=self.keepalive_interval,
                         outbound_bound=self.outbound_bound,
                         batching=(self.batch_enabled
                                   and peer.minor >= BATCH_MIN_MINOR),
                         mesh=(self.wire_minor >= MESH_MIN_MINOR
                               and peer.minor >= MESH_MIN_MINOR)).start()
        with self._state_lock:
            route.link = link
            route.connecting = False
            route.attempt = 0
            reconnect = route.ever_connected
            route.ever_connected = True
        self._m_connects.inc()
        if reconnect:
            self._m_reconnects.inc()
        log.info("trunk route %s=%s:%d up (peer %r)", route.prefix,
                 route.host, route.port, peer.name)

    def _connect_failed(self, route: TrunkRoute, why: str) -> None:
        with self._state_lock:
            delay = self.retry.delay(
                min(route.attempt, _MAX_BACKOFF_EXPONENT))
            route.attempt += 1
            route.next_attempt_at = time.monotonic() + delay
            route.connecting = False
        log.debug("trunk route %s=%s:%d connect failed (%s); retry in "
                  "%.2fs", route.prefix, route.host, route.port, why, delay)

    # -- mesh: discovery-driven links + route adverts (tick thread) -----------

    def _mesh_tick(self, now: float) -> None:
        """Fold the latest discovery snapshot into peer links."""
        discovery = self._discovery
        if (discovery is not None
                and discovery.generation != self._seen_generation):
            self._seen_generation = discovery.generation
            roster = discovery.peers()
            stale_links: list[TrunkLink] = []
            with self._state_lock:
                for name, record in roster.items():
                    peer = self._mesh_peers.get(name)
                    if peer is None:
                        self._mesh_peers[name] = MeshPeer(record)
                    elif peer.record != record:
                        if (peer.link is not None
                                and (record.host, record.port)
                                != (peer.record.host, peer.record.port)):
                            stale_links.append(peer.link)
                            peer.link = None
                        peer.record = record
                for name in [name for name in self._mesh_peers
                             if name not in roster]:
                    peer = self._mesh_peers.pop(name)
                    if peer.link is not None:
                        stale_links.append(peer.link)
            for link in stale_links:
                # Deregistered (or re-addressed) peers: close outside
                # the state lock, the reap releases their calls.
                link.close()
        with self._state_lock:
            peers = list(self._mesh_peers.values())
        linked_names = {link.name for link in self._all_links()
                        if link.alive}
        for peer in peers:
            if (self._should_initiate(peer.name)
                    and peer.live_link() is None
                    and peer.name not in linked_names):
                self._kick_route(peer, now)

    def _should_initiate(self, name: str) -> bool:
        """Does the neighbor policy let us open the link to ``name``?

        With an explicit neighbor list, only listed peers are dialed
        (the topology knob the line/star soaks turn).  Without one,
        every peer is a neighbor and the lexically smaller name
        initiates, so two nodes never cross-connect.
        """
        if name == self.name:
            return False
        if self._mesh_neighbors is not None:
            return name in self._mesh_neighbors
        return self.name < name

    def _flush_adverts(self) -> None:
        """Tell each mesh link what changed in the route table.

        Re-advertisement is bounded two ways: nothing is sent while the
        table version a link last saw is current, and what is sent is
        the *diff* against that link's previous export (vanished routes
        go out as UNREACHABLE_HOPS withdrawals).  A fresh link has no
        advert state, so it receives the full table once.
        """
        version = self.table.version
        for link in self._all_links():
            if not link.alive or not link.mesh:
                continue
            state = self._advertised.get(link)
            if state is None:
                state = self._advertised[link] = _AdvertState()
            elif state.version == version:
                continue
            export = self.table.exports_for(link)
            adverts = [(prefix, origin, hops, seq)
                       for (prefix, origin), (hops, seq) in export.items()
                       if state.sent.get((prefix, origin)) != (hops, seq)]
            adverts += [(prefix, origin, UNREACHABLE_HOPS, seq)
                        for (prefix, origin), (_hops, seq)
                        in state.sent.items()
                        if (prefix, origin) not in export]
            state.version = version
            state.sent = export
            for start in range(0, len(adverts), MAX_ADVERT_ENTRIES):
                chunk = tuple(adverts[start:start + MAX_ADVERT_ENTRIES])
                self.send_on(link, TrunkFrame(FrameType.ROUTE_ADVERT,
                                              adverts=chunk))
                self._m_adverts_out.inc(len(chunk))

    # -- accepting ------------------------------------------------------------

    def _accept_loop(self) -> None:
        local = Handshake(self.name, minor=self.wire_minor,
                          sample_rate=self.exchange.sample_rate)
        while self._running:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break
            try:
                sock.settimeout(self.connect_timeout)
                peer = Handshake.read_from(sock)
                sock.sendall(local.encode())
                problem = local.compatible_with(peer)
                if problem is not None:
                    raise TrunkProtocolError(problem)
                sock.settimeout(None)
            except (OSError, ConnectionClosed, TrunkProtocolError) as exc:
                log.warning("refused trunk connection: %s", exc)
                self._m_setup_refused.inc()
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            link = TrunkLink(
                sock, peer, initiated=False,
                keepalive_interval=self.keepalive_interval,
                outbound_bound=self.outbound_bound,
                batching=(self.batch_enabled
                          and peer.minor >= BATCH_MIN_MINOR),
                mesh=(self.wire_minor >= MESH_MIN_MINOR
                      and peer.minor >= MESH_MIN_MINOR)).start()
            with self._state_lock:
                self._accepted.append(link)

    # -- frame handling (tick thread) -----------------------------------------

    def _leg_for(self, link: TrunkLink, call_id: int) -> _TrunkLeg | None:
        with self._state_lock:
            return self._legs.get(link, {}).get(call_id)

    def _handle_frame(self, link: TrunkLink, frame: TrunkFrame) -> None:
        if frame.type is FrameType.AUDIO:
            self._m_frames_in.inc()
            leg = self._leg_for(link, frame.call_id)
            if leg is not None:
                # Raw bytes go straight into the ring; decode happens
                # once per pop as a single table take.
                leg.jitter.push(frame.seq, frame.payload)
            return
        if frame.type is FrameType.AUDIO_BATCH:
            entries = frame.entries
            self._m_frames_in.inc(len(entries))
            self._m_batch_in.inc()
            self._m_batch_entries_in.inc(len(entries))
            with self._state_lock:
                by_call = dict(self._legs.get(link, {}))
            for call_id, seq, payload in entries:
                leg = by_call.get(call_id)
                if leg is not None:
                    leg.jitter.push(seq, payload)
            return
        self._m_signaling_in.inc()
        if frame.type is FrameType.ROUTE_ADVERT:
            self._m_adverts_in.inc(len(frame.adverts))
            if self.mesh_enabled:
                # learn() bumps the table version on change; the next
                # advert flush propagates it onward.
                for prefix, origin, hops, seq in frame.adverts:
                    self.table.learn(link, prefix, origin, hops, seq)
            # A non-mesh gateway (static routes only) ignores adverts
            # rather than refusing them: minor 2 is a capability, not
            # an obligation.
            return
        if frame.type in (FrameType.SETUP, FrameType.SETUP2):
            self._handle_setup(link, frame)
            return
        leg = self._leg_for(link, frame.call_id)
        if leg is None:
            return
        if frame.type is FrameType.ALERTING:
            leg.alerting = True
        elif frame.type is FrameType.ANSWER:
            if isinstance(leg, RemoteLine):
                leg.remote_answered()
        elif frame.type is FrameType.RELEASE:
            self.deregister_leg(leg)
            leg.remote_released(frame.reason)
        elif frame.type is FrameType.DTMF:
            self.exchange.route_dtmf(leg, frame.digits)

    def _handle_setup(self, link: TrunkLink, frame: TrunkFrame) -> None:
        if self._leg_for(link, frame.call_id) is not None:
            log.warning("trunk link %s: duplicate call id %d in SETUP",
                        link.name, frame.call_id)
            self.send_on(link, TrunkFrame(FrameType.RELEASE, frame.call_id,
                                          reason="duplicate call id"))
            return
        if frame.type is FrameType.SETUP2:
            # The via list names every gateway the call already crossed;
            # seeing our own name means a routing loop, and a hop count
            # at the bound means someone's topology is degenerate.  Both
            # releases are retryable, so the upstream tandem fails over
            # to its next candidate instead of killing the call.
            if self.name in frame.via:
                self._m_loop_refused.inc()
                log.warning("trunk link %s: routing loop for %r (via %s)",
                            link.name, frame.number, "/".join(frame.via))
                self.send_on(link, TrunkFrame(
                    FrameType.RELEASE, frame.call_id, reason="routing loop"))
                return
            if frame.hops >= self.table.max_hops:
                self._m_hop_refused.inc()
                self.send_on(link, TrunkFrame(
                    FrameType.RELEASE, frame.call_id,
                    reason="max hops exceeded"))
                return
        leg = InboundLeg(frame.caller_id or "unknown", self.exchange,
                         self, link, frame.call_id)
        leg.via = frame.via
        leg.hops = frame.hops
        with self._state_lock:
            self._legs.setdefault(link, {})[frame.call_id] = leg
        self._m_calls_in.inc()
        self._m_active.set(self._leg_count())
        self.exchange.dial(leg, frame.number,
                           forwarded_from=frame.forwarded_from or None)
        if self.exchange.call_for(leg) is not None:
            self.send_on(link, TrunkFrame(FrameType.ALERTING,
                                          frame.call_id))
        # else: dial already failed the call; the leg's call_failed sent
        # the RELEASE and deregistered itself.

    # -- bearer pump ----------------------------------------------------------

    def _pump_audio(self, frames: int) -> None:
        with self._state_lock:
            legs = [leg for by_call in self._legs.values()
                    for leg in by_call.values()]
        from ..telephony.call import CallState

        # Legs with nothing buffered (never primed) are skipped outright
        # -- routing explicit silence and routing nothing sound
        # identical to the far side, and a 256-call link's quiet
        # direction would otherwise pay the whole pump for zeros.
        # Each entry pairs the leg with its (already state-checked) call
        # so delivery below can go straight to the far party instead of
        # re-resolving through exchange.route_audio.
        voiced = [(leg, call) for leg in legs
                  if leg.jitter.poppable()
                  and (call := self.exchange.call_for(leg)) is not None
                  and call.state is CallState.CONNECTED]
        if not voiced:
            return
        if len(voiced) == 1:
            leg, call = voiced[0]
            call.other_party(leg).deliver_audio(leg.jitter.pop(frames))
            return
        # Vector path: assemble every leg's raw mu-law window, decode
        # the lot in ONE table take, hand each leg its slice.  Each
        # jitter buffer owns its pop scratch, so the gathered views stay
        # valid until the join copies them.
        raw = b"".join(leg.jitter.pop_raw(frames) for leg, _ in voiced)
        decoded = np.take(MULAW_DECODE_TABLE,
                          np.frombuffer(raw, dtype=np.uint8))
        for index, (leg, call) in enumerate(voiced):
            call.other_party(leg).deliver_audio(
                decoded[index * frames:(index + 1) * frames])

    # -- metric folding -------------------------------------------------------

    def _fold(self, obj, attr: str, counter) -> None:
        current = getattr(obj, attr)
        folded_attr = "_folded_" + attr
        previous = getattr(obj, folded_attr, 0)
        if current > previous:
            counter.inc(current - previous)
            setattr(obj, folded_attr, current)

    def _fold_leg_stats(self, leg: _TrunkLeg) -> None:
        jitter = leg.jitter
        self._fold(jitter, "late_frames", self._m_late)
        self._fold(jitter, "lost_frames", self._m_lost)
        self._fold(jitter, "underruns", self._m_underruns)
        self._fold(jitter, "shed_samples", self._m_jitter_shed)

    def _update_gauges(self) -> None:
        links = [link for link in self._all_links() if link.alive]
        self._m_links.set(len(links))
        for link in links:
            self._fold(link, "shed_audio_frames", self._m_outbound_shed)
            self._fold(link, "sendalls", self._m_sendalls)
            self._fold(link, "recvs", self._m_recvs)
            self._fold(link, "batch_frames_out", self._m_batch_out)
            self._fold(link, "batch_entries_out", self._m_batch_entries_out)
        if self.mesh_enabled:
            self._m_route_entries.set(self.table.entry_count())
            self._fold(self.table, "withdrawn", self._m_withdrawn)
            with self._state_lock:
                self._m_mesh_peers.set(len(self._mesh_peers))
            if self._discovery is not None:
                self._fold(self._discovery, "polls", self._m_polls)
                self._fold(self._discovery, "poll_failures",
                           self._m_poll_failures)
            if self._registry is not None:
                self._fold(self._registry, "registrations",
                           self._m_registrations)
                self._fold(self._registry, "expired", self._m_reg_expired)
        # The per-leg pass (jitter counter folds + depth/active gauges)
        # walks every leg; at hundreds of calls per link that walk costs
        # more than the bearer pump, so it runs every Nth tick.  Final
        # values stay exact: deregister/release fold each leg on the way
        # out.
        self._gauge_ticks += 1
        if (self._gauge_ticks - 1) % GAUGE_LEG_TICKS:
            return
        with self._state_lock:
            legs = [leg for by_call in self._legs.values()
                    for leg in by_call.values()]
        for leg in legs:
            self._fold_leg_stats(leg)
        self._m_jitter_depth.set(
            sum(leg.jitter.depth_samples for leg in legs))
        self._m_active.set(len(legs))

    # -- introspection (tests, stats) -----------------------------------------

    def buffered_audio_samples(self) -> int:
        """Total audio queued in every leg's jitter buffer right now."""
        with self._state_lock:
            legs = [leg for by_call in self._legs.values()
                    for leg in by_call.values()]
        return sum(leg.jitter.depth_samples for leg in legs)

    def live_link_count(self) -> int:
        return len([link for link in self._all_links() if link.alive])

    def mesh_snapshot(self) -> dict:
        """The mesh section of GET_SERVER_STATS: who we know, what we
        can route.  Empty dict when mesh routing is not enabled."""
        if not self.mesh_enabled:
            return {}
        linked = {link.name for link in self._all_links() if link.alive}
        with self._state_lock:
            peers = [{
                "name": peer.name,
                "endpoint": "%s:%d" % (peer.host, peer.port),
                "prefixes": list(peer.record.prefixes),
                "linked": peer.name in linked,
            } for peer in sorted(self._mesh_peers.values(),
                                 key=lambda peer: peer.name)]
        snapshot = {
            "node": self.name,
            "max_hops": self.table.max_hops,
            "advert_seq": self.table.seq,
            "local_prefixes": list(self.table.local_prefixes),
            "peers": peers,
            "routes": self.table.snapshot(),
        }
        if self._discovery is not None:
            snapshot["registry"] = "%s:%d" % self._discovery.registry
        if self._registry is not None:
            snapshot["serving_registry"] = "%s:%d" % (
                self._registry.host, self._registry.port)
        return snapshot


# read_frame is re-exported for tests that speak raw trunk protocol.
__all__ = ["InboundLeg", "MeshPeer", "RemoteLine", "TrunkGateway",
           "TrunkRoute", "parse_route", "read_frame"]
