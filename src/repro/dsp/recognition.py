"""Small-vocabulary speech recognition.

Per the paper (section 1.1): "Speech recognition usually employs a
digital signal processor to extract acoustically significant features
from the audio signal, and a general purpose processor for pattern
matching to determine which word was spoken."  And, honestly
(section 1.4): "speech recognition simply does not work very well."

This is the classical isolated-word recognizer of that era:

* **features** -- log mel-style filterbank energies per 20 ms frame;
* **pattern matching** -- dynamic time warping (DTW) against stored
  templates, one or more per vocabulary word;
* **endpointing** -- energy-based utterance detection on the live stream.

Training (the protocol's Train command) stores a template; recognition
emits (word, score) results.  Scores are normalized path costs -- lower
is better -- and a rejection threshold keeps garbage from matching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

FRAME_MS = 20
#: Number of triangular filters in the filterbank.
FILTER_COUNT = 12


def _mel(frequency: float) -> float:
    return 2595.0 * np.log10(1.0 + frequency / 700.0)


def _mel_inverse(mel: float) -> float:
    return 700.0 * (10.0 ** (mel / 2595.0) - 1.0)


def _filterbank(rate: int, fft_size: int) -> np.ndarray:
    """Triangular mel filterbank matrix (FILTER_COUNT x bins)."""
    low_mel = _mel(100.0)
    high_mel = _mel(rate / 2.0 - 100.0)
    centers_mel = np.linspace(low_mel, high_mel, FILTER_COUNT + 2)
    centers_hz = np.array([_mel_inverse(m) for m in centers_mel])
    bin_frequencies = np.fft.rfftfreq(fft_size, 1.0 / rate)
    bank = np.zeros((FILTER_COUNT, len(bin_frequencies)))
    for index in range(FILTER_COUNT):
        left, center, right = centers_hz[index:index + 3]
        rising = (bin_frequencies - left) / max(center - left, 1.0)
        falling = (right - bin_frequencies) / max(right - center, 1.0)
        bank[index] = np.clip(np.minimum(rising, falling), 0.0, None)
    return bank


def extract_features(samples: np.ndarray, rate: int) -> np.ndarray:
    """Feature matrix (frames x FILTER_COUNT) of log filterbank energies.

    Features are mean-normalized per utterance, which buys a little
    channel robustness (the same trick that lets templates trained on the
    microphone match over the telephone path).
    """
    block = np.asarray(samples, dtype=np.float64)
    frame = max(1, rate * FRAME_MS // 1000)
    count = len(block) // frame
    if count == 0:
        return np.zeros((0, FILTER_COUNT))
    frames = block[:count * frame].reshape(count, frame)
    windowed = frames * np.hanning(frame)
    spectra = np.abs(np.fft.rfft(windowed, axis=1)) ** 2
    bank = _filterbank(rate, frame)
    energies = spectra @ bank.T
    features = np.log(energies + 1.0)
    return features - features.mean(axis=0, keepdims=True)


def dtw_distance(template: np.ndarray, sample: np.ndarray,
                 band: int | None = None) -> float:
    """Normalized DTW path cost between two feature matrices.

    Euclidean local distance, the standard (1,1)/(1,0)/(0,1) step
    pattern, optional Sakoe-Chiba band, cost normalized by path-defining
    length so short and long words compete fairly.  Returns ``inf`` when
    either side is empty or the band admits no path.
    """
    rows = len(template)
    cols = len(sample)
    if rows == 0 or cols == 0:
        return float("inf")
    if band is None:
        band = max(rows, cols)  # effectively unconstrained
    band = max(band, abs(rows - cols) + 1)
    local = np.full((rows, cols), np.inf)
    for row in range(rows):
        low = max(0, row - band)
        high = min(cols, row + band + 1)
        if low < high:
            diff = sample[low:high] - template[row]
            local[row, low:high] = np.sqrt(np.sum(diff * diff, axis=1))
    accumulated = np.full((rows, cols), np.inf)
    accumulated[0, 0] = local[0, 0]
    for row in range(rows):
        for col in range(max(0, row - band), min(cols, row + band + 1)):
            if row == 0 and col == 0:
                continue
            best = np.inf
            if row > 0:
                best = min(best, accumulated[row - 1, col])
            if col > 0:
                best = min(best, accumulated[row, col - 1])
            if row > 0 and col > 0:
                best = min(best, accumulated[row - 1, col - 1])
            accumulated[row, col] = local[row, col] + best
    return float(accumulated[-1, -1] / (rows + cols))


@dataclass
class RecognitionResult:
    word: str
    score: float    # normalized DTW cost; lower is better


@dataclass
class WordTemplate:
    word: str
    features: np.ndarray


class Recognizer:
    """Trainable isolated-word recognizer with an active vocabulary."""

    def __init__(self, rate: int, rejection_threshold: float = 10.0,
                 band: int = 20) -> None:
        self.rate = rate
        self.rejection_threshold = rejection_threshold
        self.band = band
        self._templates: list[WordTemplate] = []
        self._vocabulary: set[str] | None = None    # None = all trained

    @property
    def trained_words(self) -> list[str]:
        seen: list[str] = []
        for template in self._templates:
            if template.word not in seen:
                seen.append(template.word)
        return seen

    def _trim(self, samples: np.ndarray) -> np.ndarray:
        """Endpoint the utterance: strip leading/trailing silence.

        Recognition must be invariant to how much silence surrounds the
        word (templates are trained from stored sounds, live audio comes
        from an energy endpointer with its own padding).
        """
        from .silence import find_speech_runs

        runs = find_speech_runs(samples, self.rate)
        if not runs:
            return samples
        margin = self.rate // 20    # keep 50 ms of context each side
        start = max(0, runs[0][0] - margin)
        end = min(len(samples), runs[-1][1] + margin)
        return samples[start:end]

    def train(self, word: str, samples: np.ndarray) -> None:
        """Store a template for ``word`` from a training utterance."""
        features = extract_features(self._trim(samples), self.rate)
        if len(features) < 2:
            raise ValueError("training utterance too short")
        self._templates.append(WordTemplate(word, features))

    def set_vocabulary(self, words: list[str] | None) -> None:
        """Restrict recognition to a subset of trained words.

        ``None`` re-enables every trained word.  Unknown words are
        rejected so applications discover typos at SetVocabulary time.
        """
        if words is None:
            self._vocabulary = None
            return
        trained = set(self.trained_words)
        missing = [word for word in words if word not in trained]
        if missing:
            raise ValueError("untrained words: %s" % ", ".join(missing))
        self._vocabulary = set(words)

    def adjust_context(self, rejection_threshold: float | None = None,
                       band: int | None = None) -> None:
        """Tune matching strictness (the AdjustContext command)."""
        if rejection_threshold is not None:
            if rejection_threshold <= 0:
                raise ValueError("rejection threshold must be positive")
            self.rejection_threshold = rejection_threshold
        if band is not None:
            if band < 1:
                raise ValueError("band must be at least 1")
            self.band = band

    def recognize(self, samples: np.ndarray) -> RecognitionResult | None:
        """Classify one utterance; None if nothing scores under threshold."""
        features = extract_features(self._trim(samples), self.rate)
        if len(features) < 2:
            return None
        best: RecognitionResult | None = None
        for template in self._templates:
            if (self._vocabulary is not None
                    and template.word not in self._vocabulary):
                continue
            score = dtw_distance(template.features, features, self.band)
            if best is None or score < best.score:
                best = RecognitionResult(template.word, score)
        if best is None or best.score > self.rejection_threshold:
            return None
        return best

    def save_vocabulary(self) -> dict:
        """Serializable snapshot (the SaveVocabulary command)."""
        return {
            "rate": self.rate,
            "rejection_threshold": self.rejection_threshold,
            "band": self.band,
            "templates": [
                {"word": template.word,
                 "features": template.features.tolist()}
                for template in self._templates
            ],
            "vocabulary": (sorted(self._vocabulary)
                           if self._vocabulary is not None else None),
        }

    @classmethod
    def load_vocabulary(cls, snapshot: dict) -> "Recognizer":
        recognizer = cls(snapshot["rate"],
                         snapshot["rejection_threshold"],
                         snapshot["band"])
        for entry in snapshot["templates"]:
            recognizer._templates.append(WordTemplate(
                entry["word"], np.array(entry["features"])))
        vocabulary = snapshot.get("vocabulary")
        if vocabulary is not None:
            recognizer._vocabulary = set(vocabulary)
        return recognizer


class UtteranceDetector:
    """Energy-based endpointing over a live sample stream.

    Feed blocks; when a complete utterance (speech bounded by silence) is
    detected, :meth:`feed` returns its samples.  Used by the recognizer
    virtual device to segment microphone input.
    """

    def __init__(self, rate: int, threshold: float = 300.0,
                 min_speech_ms: int = 120, trailing_silence_ms: int = 250,
                 max_utterance_ms: int = 3000) -> None:
        self.rate = rate
        self.threshold = threshold
        self.min_speech = rate * min_speech_ms // 1000
        self.trailing_silence = rate * trailing_silence_ms // 1000
        self.max_utterance = rate * max_utterance_ms // 1000
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        self._speech_seen = 0
        self._silence_run = 0

    def feed(self, samples: np.ndarray) -> np.ndarray | None:
        block = np.asarray(samples, dtype=np.int16)
        if len(block) == 0:
            return None
        level = float(np.sqrt(np.mean(
            np.asarray(block, dtype=np.float64) ** 2)))
        if level >= self.threshold:
            self._buffer.append(block)
            self._buffered += len(block)
            self._speech_seen += len(block)
            self._silence_run = 0
            if self._buffered >= self.max_utterance:
                return self._finish()
            return None
        # Silence block.
        if self._speech_seen == 0:
            return None     # still waiting for the utterance to start
        self._buffer.append(block)
        self._buffered += len(block)
        self._silence_run += len(block)
        if self._silence_run >= self.trailing_silence:
            return self._finish()
        return None

    def _finish(self) -> np.ndarray | None:
        utterance = np.concatenate(self._buffer)
        speech_seen = self._speech_seen
        self._buffer = []
        self._buffered = 0
        self._speech_seen = 0
        self._silence_run = 0
        if speech_seen < self.min_speech:
            return None     # too short: a click, not a word
        return utterance
