"""Mixing and gain arithmetic.

"Mixers take data on multiple inputs, combine the streams and then
present the combined data on one or more output ports.  The relative
combination is determined by a percentage assigned to each input."
(paper section 5.1)

All arithmetic is done in int32 and saturated back to int16, so two
full-scale inputs clip rather than wrap.

The block cycle calls :func:`mix` for every sink port on every tick, so
the unweighted case (all gains 1.0 -- the common wire-graph path) runs
on an int32 accumulator drawn from a reusable per-thread scratch buffer
instead of allocating a float64 array per block.  Sums of int16 blocks
are exact in both int32 and float64, so the fast path is bit-identical
to the weighted float path (tests/test_dsp_fastpath.py proves it,
saturation edges included); gain-weighted mixes still go through float64
for exact rounding parity.
"""

from __future__ import annotations

import threading

import numpy as np

INT16_MIN = -32768
INT16_MAX = 32767

#: Per-thread scratch accumulators; the hub block cycle is one thread,
#: so in the server this is a single buffer reused every block.
_scratch = threading.local()


def _accumulator(length: int, dtype) -> np.ndarray:
    """A zeroed scratch array of at least ``length``, reused per thread."""
    key = dtype.__name__
    buffer = getattr(_scratch, key, None)
    if buffer is None or len(buffer) < length:
        buffer = np.empty(max(length, 1024), dtype=dtype)
        setattr(_scratch, key, buffer)
    view = buffer[:length]
    view.fill(0)
    return view


def saturate(samples: np.ndarray) -> np.ndarray:
    """Clamp a wider-than-int16 array into int16 range."""
    return np.clip(samples, INT16_MIN, INT16_MAX).astype(np.int16)


def apply_gain(samples: np.ndarray, gain: float) -> np.ndarray:
    """Scale samples by a linear gain factor with saturation.

    ``gain`` of 1.0 is unity; the protocol's ChangeGain percentages map
    via ``percent / 100``.
    """
    if gain == 1.0:
        return np.asarray(samples, dtype=np.int16)
    scaled = np.asarray(samples, dtype=np.float64) * gain
    return saturate(np.round(scaled).astype(np.int64))


def mix(blocks: list[np.ndarray], gains: list[float] | None = None,
        length: int | None = None) -> np.ndarray:
    """Sum blocks (optionally gain-weighted) into one saturated block.

    Short blocks are treated as silence-padded: the output length is the
    longest input (or ``length`` if given), which is what a speaker does
    when one stream ends mid-block.
    """
    if length is None:
        length = max((len(block) for block in blocks), default=0)
    if ((gains is None or all(gain == 1.0 for gain in gains))
            and all(isinstance(block, np.ndarray)
                    and block.dtype in (np.int16, np.int32)
                    for block in blocks)):
        # Unweighted sums of int16 are exact in int32 (no rounding, no
        # overflow below ~64k inputs), so skip the float64 round trip.
        # int32 inputs are the process render backend's partial sums --
        # themselves bounded sums of int16 blocks -- so the accumulator
        # still cannot overflow.
        accumulator = _accumulator(length, np.int32)
        for block in blocks:
            usable = min(len(block), length)
            if usable:
                accumulator[:usable] += block[:usable]
        return saturate(accumulator)
    accumulator = _accumulator(length, np.float64)
    for position, block in enumerate(blocks):
        gain = 1.0 if gains is None else gains[position]
        if gain == 0.0 or len(block) == 0:
            continue
        usable = min(len(block), length)
        accumulator[:usable] += (
            np.asarray(block[:usable], dtype=np.float64) * gain)
    return saturate(np.round(accumulator).astype(np.int64))


def mix_reference(blocks: list[np.ndarray],
                  gains: list[float] | None = None,
                  length: int | None = None) -> np.ndarray:
    """The original all-float64 mixer, kept as the golden reference."""
    if length is None:
        length = max((len(block) for block in blocks), default=0)
    accumulator = np.zeros(length, dtype=np.float64)
    for position, block in enumerate(blocks):
        gain = 1.0 if gains is None else gains[position]
        if gain == 0.0 or len(block) == 0:
            continue
        usable = min(len(block), length)
        accumulator[:usable] += (
            np.asarray(block[:usable], dtype=np.float64) * gain)
    return saturate(np.round(accumulator).astype(np.int64))


def rms(samples: np.ndarray) -> float:
    """Root-mean-square level of a block (0.0 for an empty block)."""
    if len(samples) == 0:
        return 0.0
    values = np.asarray(samples, dtype=np.float64)
    return float(np.sqrt(np.mean(values * values)))


def peak(samples: np.ndarray) -> int:
    """Peak absolute sample value of a block."""
    if len(samples) == 0:
        return 0
    return int(np.max(np.abs(np.asarray(samples, dtype=np.int32))))
