"""Audio sample codecs: G.711 mu-law and A-law, linear PCM.

The server's internal sample format is 16-bit linear PCM held in numpy
``int16`` arrays; every stored or wire encoding converts to and from that
(paper section 2: "it is useful to support multiple data representations
at a level below the application").

The mu-law and A-law implementations follow ITU-T G.711; they are exact
table-free implementations validated against the standard's segment
structure in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..protocol.types import Encoding, SoundType

# --- mu-law ----------------------------------------------------------------

_MULAW_BIAS = 0x84
_MULAW_CLIP = 32635


def mulaw_encode(samples: np.ndarray) -> bytes:
    """Encode int16 linear samples to 8-bit mu-law."""
    pcm = np.asarray(samples, dtype=np.int32)
    sign = (pcm < 0).astype(np.uint8)
    magnitude = np.abs(pcm)
    magnitude = np.minimum(magnitude, _MULAW_CLIP) + _MULAW_BIAS
    # The exponent is the position of the highest set bit above bit 7.
    exponent = np.zeros_like(magnitude)
    for shift in range(7, 0, -1):
        exponent = np.where(
            (magnitude >> (shift + 7)) & 1,
            np.maximum(exponent, shift),
            exponent)
    mantissa = (magnitude >> (exponent + 3)) & 0x0F
    encoded = ~((sign << 7) | (exponent.astype(np.uint8) << 4)
                | mantissa.astype(np.uint8)) & 0xFF
    return encoded.astype(np.uint8).tobytes()


def mulaw_decode(data: bytes) -> np.ndarray:
    """Decode 8-bit mu-law bytes to int16 linear samples."""
    encoded = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
    encoded = ~encoded & 0xFF
    sign = encoded >> 7
    exponent = (encoded >> 4) & 0x07
    mantissa = encoded & 0x0F
    magnitude = ((mantissa << 3) + _MULAW_BIAS) << exponent
    magnitude -= _MULAW_BIAS
    samples = np.where(sign, -magnitude, magnitude)
    return samples.astype(np.int16)


# --- A-law -----------------------------------------------------------------

_ALAW_CLIP = 32635


def alaw_encode(samples: np.ndarray) -> bytes:
    """Encode int16 linear samples to 8-bit A-law."""
    pcm = np.asarray(samples, dtype=np.int32)
    # Sign bit set means positive in A-law (before the 0x55 toggle).
    sign = np.where(pcm >= 0, 0x80, 0x00)
    magnitude = np.minimum(np.abs(pcm), _ALAW_CLIP)
    # Segment: highest set bit above bit 8 (segments 1..7), else segment 0.
    exponent = np.zeros_like(magnitude)
    for shift in range(7, 0, -1):
        exponent = np.where(
            (magnitude >> (shift + 7)) & 1,
            np.maximum(exponent, shift),
            exponent)
    mantissa = np.where(
        exponent == 0,
        (magnitude >> 4) & 0x0F,
        (magnitude >> (exponent + 3)) & 0x0F)
    encoded = ((sign | (exponent << 4) | mantissa) ^ 0x55) & 0xFF
    return encoded.astype(np.uint8).tobytes()


def alaw_decode(data: bytes) -> np.ndarray:
    """Decode 8-bit A-law bytes to int16 linear samples."""
    encoded = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
    encoded ^= 0x55
    sign = encoded & 0x80
    exponent = (encoded >> 4) & 0x07
    mantissa = encoded & 0x0F
    magnitude = np.where(
        exponent == 0,
        (mantissa << 4) + 8,
        ((mantissa << 4) + 0x108) << (exponent - 1))
    samples = np.where(sign, magnitude, -magnitude)
    return samples.astype(np.int16)


# --- linear PCM ------------------------------------------------------------

def pcm16_encode(samples: np.ndarray) -> bytes:
    """int16 linear samples to little-endian 16-bit PCM bytes."""
    return np.asarray(samples, dtype="<i2").tobytes()


def pcm16_decode(data: bytes) -> np.ndarray:
    """Little-endian 16-bit PCM bytes to int16 linear samples."""
    usable = len(data) - (len(data) % 2)
    return np.frombuffer(data[:usable], dtype="<i2").astype(np.int16)


# --- dispatch --------------------------------------------------------------

def encode(samples: np.ndarray, sound_type: SoundType) -> bytes:
    """Encode linear int16 samples into a sound type's stored bytes."""
    if sound_type.encoding is Encoding.MULAW:
        return mulaw_encode(samples)
    if sound_type.encoding is Encoding.ALAW:
        return alaw_encode(samples)
    if sound_type.encoding is Encoding.PCM16:
        return pcm16_encode(samples)
    if sound_type.encoding is Encoding.ADPCM:
        from .adpcm import adpcm_encode

        return adpcm_encode(samples)
    raise ValueError("cannot encode to %s" % sound_type.encoding.name)


def decode(data: bytes, sound_type: SoundType) -> np.ndarray:
    """Decode a sound type's stored bytes into linear int16 samples."""
    if sound_type.encoding is Encoding.MULAW:
        return mulaw_decode(data)
    if sound_type.encoding is Encoding.ALAW:
        return alaw_decode(data)
    if sound_type.encoding is Encoding.PCM16:
        return pcm16_decode(data)
    if sound_type.encoding is Encoding.ADPCM:
        from .adpcm import adpcm_decode

        return adpcm_decode(data)
    raise ValueError("cannot decode from %s" % sound_type.encoding.name)
