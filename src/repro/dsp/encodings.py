"""Audio sample codecs: G.711 mu-law and A-law, linear PCM.

The server's internal sample format is 16-bit linear PCM held in numpy
``int16`` arrays; every stored or wire encoding converts to and from that
(paper section 2: "it is useful to support multiple data representations
at a level below the application").

Two implementations live side by side:

* the **reference** functions (``*_reference``) compute G.711 from the
  ITU-T segment structure directly, with a 7-iteration exponent search;
  they define correctness and are what the test suite validates against
  the standard;
* the **table-driven** fast path precomputes a 256-entry decode table
  and a 65536-entry encode table from the reference functions at import
  time and applies them with one ``np.take`` per call.  The fast path is
  byte-identical to the reference across the whole int16 domain and all
  256 code points (tests/test_dsp_fastpath.py), and is what the public
  ``mulaw_*`` / ``alaw_*`` names dispatch to.
"""

from __future__ import annotations

import numpy as np

from ..protocol.types import Encoding, SoundType

# --- mu-law (reference) ----------------------------------------------------

_MULAW_BIAS = 0x84
_MULAW_CLIP = 32635


def mulaw_encode_reference(samples: np.ndarray) -> bytes:
    """Encode int16 linear samples to 8-bit mu-law (segment search)."""
    pcm = np.asarray(samples, dtype=np.int32)
    sign = (pcm < 0).astype(np.uint8)
    magnitude = np.abs(pcm)
    magnitude = np.minimum(magnitude, _MULAW_CLIP) + _MULAW_BIAS
    # The exponent is the position of the highest set bit above bit 7.
    exponent = np.zeros_like(magnitude)
    for shift in range(7, 0, -1):
        exponent = np.where(
            (magnitude >> (shift + 7)) & 1,
            np.maximum(exponent, shift),
            exponent)
    mantissa = (magnitude >> (exponent + 3)) & 0x0F
    encoded = ~((sign << 7) | (exponent.astype(np.uint8) << 4)
                | mantissa.astype(np.uint8)) & 0xFF
    return encoded.astype(np.uint8).tobytes()


def mulaw_decode_reference(data: bytes) -> np.ndarray:
    """Decode 8-bit mu-law bytes to int16 linear samples (arithmetic)."""
    encoded = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
    encoded = ~encoded & 0xFF
    sign = encoded >> 7
    exponent = (encoded >> 4) & 0x07
    mantissa = encoded & 0x0F
    magnitude = ((mantissa << 3) + _MULAW_BIAS) << exponent
    magnitude -= _MULAW_BIAS
    samples = np.where(sign, -magnitude, magnitude)
    return samples.astype(np.int16)


# --- A-law (reference) -----------------------------------------------------

_ALAW_CLIP = 32635


def alaw_encode_reference(samples: np.ndarray) -> bytes:
    """Encode int16 linear samples to 8-bit A-law (segment search)."""
    pcm = np.asarray(samples, dtype=np.int32)
    # Sign bit set means positive in A-law (before the 0x55 toggle).
    sign = np.where(pcm >= 0, 0x80, 0x00)
    magnitude = np.minimum(np.abs(pcm), _ALAW_CLIP)
    # Segment: highest set bit above bit 8 (segments 1..7), else segment 0.
    exponent = np.zeros_like(magnitude)
    for shift in range(7, 0, -1):
        exponent = np.where(
            (magnitude >> (shift + 7)) & 1,
            np.maximum(exponent, shift),
            exponent)
    mantissa = np.where(
        exponent == 0,
        (magnitude >> 4) & 0x0F,
        (magnitude >> (exponent + 3)) & 0x0F)
    encoded = ((sign | (exponent << 4) | mantissa) ^ 0x55) & 0xFF
    return encoded.astype(np.uint8).tobytes()


def alaw_decode_reference(data: bytes) -> np.ndarray:
    """Decode 8-bit A-law bytes to int16 linear samples (arithmetic)."""
    encoded = np.frombuffer(data, dtype=np.uint8).astype(np.int32)
    encoded ^= 0x55
    sign = encoded & 0x80
    exponent = (encoded >> 4) & 0x07
    mantissa = encoded & 0x0F
    magnitude = np.where(
        exponent == 0,
        (mantissa << 4) + 8,
        ((mantissa << 4) + 0x108) << (exponent - 1))
    samples = np.where(sign, magnitude, -magnitude)
    return samples.astype(np.int16)


# --- table-driven fast path ------------------------------------------------

_ALL_CODES = bytes(range(256))
#: Every int16 value, ordered so that ``value.view(uint16)`` indexes it.
_ALL_INT16 = np.arange(65536, dtype=np.uint16).view(np.int16)

#: code byte -> linear sample, 256 entries.
MULAW_DECODE_TABLE = mulaw_decode_reference(_ALL_CODES)
ALAW_DECODE_TABLE = alaw_decode_reference(_ALL_CODES)

#: int16 sample (viewed as uint16) -> code byte, 65536 entries.
MULAW_ENCODE_TABLE = np.frombuffer(
    mulaw_encode_reference(_ALL_INT16), dtype=np.uint8)
ALAW_ENCODE_TABLE = np.frombuffer(
    alaw_encode_reference(_ALL_INT16), dtype=np.uint8)

for _table in (MULAW_DECODE_TABLE, ALAW_DECODE_TABLE,
               MULAW_ENCODE_TABLE, ALAW_ENCODE_TABLE):
    _table.flags.writeable = False


def _encode_indices(samples: np.ndarray) -> np.ndarray:
    """Samples as uint16 table indices, matching the reference clipping.

    The reference encoders accept any integer array and clip magnitudes
    at the G.711 ceiling; values outside int16 must therefore saturate
    (not wrap) before the table lookup.
    """
    pcm = np.asarray(samples)
    if pcm.dtype != np.int16:
        pcm = np.clip(pcm, -32768, 32767).astype(np.int16)
    return np.ascontiguousarray(pcm).view(np.uint16)


def mulaw_encode(samples: np.ndarray) -> bytes:
    """Encode int16 linear samples to 8-bit mu-law."""
    return np.take(MULAW_ENCODE_TABLE, _encode_indices(samples)).tobytes()


def mulaw_decode(data: bytes) -> np.ndarray:
    """Decode 8-bit mu-law bytes to int16 linear samples."""
    return np.take(MULAW_DECODE_TABLE, np.frombuffer(data, dtype=np.uint8))


def alaw_encode(samples: np.ndarray) -> bytes:
    """Encode int16 linear samples to 8-bit A-law."""
    return np.take(ALAW_ENCODE_TABLE, _encode_indices(samples)).tobytes()


def alaw_decode(data: bytes) -> np.ndarray:
    """Decode 8-bit A-law bytes to int16 linear samples."""
    return np.take(ALAW_DECODE_TABLE, np.frombuffer(data, dtype=np.uint8))


# --- linear PCM ------------------------------------------------------------

def pcm16_encode(samples: np.ndarray) -> bytes:
    """int16 linear samples to little-endian 16-bit PCM bytes."""
    return np.asarray(samples, dtype="<i2").tobytes()


def pcm16_decode(data: bytes) -> np.ndarray:
    """Little-endian 16-bit PCM bytes to int16 linear samples."""
    usable = len(data) - (len(data) % 2)
    return np.frombuffer(data[:usable], dtype="<i2").astype(np.int16)


# --- dispatch --------------------------------------------------------------

def encode(samples: np.ndarray, sound_type: SoundType) -> bytes:
    """Encode linear int16 samples into a sound type's stored bytes."""
    if sound_type.encoding is Encoding.MULAW:
        return mulaw_encode(samples)
    if sound_type.encoding is Encoding.ALAW:
        return alaw_encode(samples)
    if sound_type.encoding is Encoding.PCM16:
        return pcm16_encode(samples)
    if sound_type.encoding is Encoding.ADPCM:
        from .adpcm import adpcm_encode

        return adpcm_encode(samples)
    raise ValueError("cannot encode to %s" % sound_type.encoding.name)


def decode(data: bytes, sound_type: SoundType) -> np.ndarray:
    """Decode a sound type's stored bytes into linear int16 samples."""
    if sound_type.encoding is Encoding.MULAW:
        return mulaw_decode(data)
    if sound_type.encoding is Encoding.ALAW:
        return alaw_decode(data)
    if sound_type.encoding is Encoding.PCM16:
        return pcm16_decode(data)
    if sound_type.encoding is Encoding.ADPCM:
        from .adpcm import adpcm_decode

        return adpcm_decode(data)
    raise ValueError("cannot decode from %s" % sound_type.encoding.name)
