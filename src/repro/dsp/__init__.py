"""Signal-processing substrate: codecs, tones, DTMF, TTS, ASR, music.

Everything the 1991 hardware did on DSP chips, in software -- exactly the
trajectory the paper predicts ("many speech processing techniques which
have traditionally been implemented on DSPs are now within the
capabilities of general purpose microprocessors").
"""

from .encodings import decode, encode
from .mixing import apply_gain, mix, peak, rms, saturate

__all__ = ["apply_gain", "decode", "encode", "mix", "peak", "rms",
           "saturate"]
