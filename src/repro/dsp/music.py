"""Note-based music synthesis.

"Music Synthesizers process note-based audio.  They accept commands, and
produce audio data on their single output.  The commands SetState and
SetVoice control music generation parameters.  Note makes a sound."
(paper section 5.1)

A small subtractive-ish synth: waveform oscillators (sine, square,
triangle, sawtooth) with an ADSR envelope, MIDI-style note numbers, and a
per-voice state block that SetVoice/SetState manipulate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mixing import saturate

WAVEFORMS = ("sine", "square", "triangle", "sawtooth")

#: MIDI note number of A4 = 440 Hz.
_A4_NUMBER = 69
_A4_HZ = 440.0


def note_frequency(note_number: int) -> float:
    """Equal-tempered frequency of a MIDI note number."""
    return _A4_HZ * 2.0 ** ((note_number - _A4_NUMBER) / 12.0)


def note_number(name: str) -> int:
    """MIDI number of a note name like ``"C4"``, ``"F#3"``, ``"Bb5"``."""
    semitones = {"C": 0, "D": 2, "E": 4, "F": 5, "G": 7, "A": 9, "B": 11}
    name = name.strip()
    if len(name) < 2:
        raise ValueError("bad note name %r" % name)
    letter = name[0].upper()
    if letter not in semitones:
        raise ValueError("bad note name %r" % name)
    rest = name[1:]
    offset = 0
    if rest[0] == "#":
        offset = 1
        rest = rest[1:]
    elif rest[0].lower() == "b":
        offset = -1
        rest = rest[1:]
    try:
        octave = int(rest)
    except ValueError:
        raise ValueError("bad note name %r" % name) from None
    return (octave + 1) * 12 + semitones[letter] + offset


@dataclass
class Adsr:
    """Attack / decay / sustain / release envelope, times in seconds."""

    attack: float = 0.01
    decay: float = 0.05
    sustain: float = 0.7    # level, 0..1
    release: float = 0.05

    def render(self, duration: float, rate: int) -> np.ndarray:
        total = max(1, int(round((duration + self.release) * rate)))
        attack_n = min(total, max(1, int(self.attack * rate)))
        decay_n = min(total - attack_n, max(0, int(self.decay * rate)))
        release_n = min(total - attack_n - decay_n,
                        max(1, int(self.release * rate)))
        sustain_n = max(0, total - attack_n - decay_n - release_n)
        pieces = [np.linspace(0.0, 1.0, attack_n, endpoint=False)]
        if decay_n:
            pieces.append(np.linspace(1.0, self.sustain, decay_n,
                                      endpoint=False))
        if sustain_n:
            pieces.append(np.full(sustain_n, self.sustain))
        pieces.append(np.linspace(self.sustain, 0.0, release_n))
        envelope = np.concatenate(pieces)
        return envelope[:total]


@dataclass
class Voice:
    """One voice's generation parameters (the SetVoice target)."""

    waveform: str = "sine"
    envelope: Adsr = None   # type: ignore[assignment]
    detune_cents: float = 0.0
    volume: float = 0.5

    def __post_init__(self) -> None:
        if self.envelope is None:
            self.envelope = Adsr()
        if self.waveform not in WAVEFORMS:
            raise ValueError("unknown waveform %r" % self.waveform)


def _oscillate(waveform: str, frequency: float, count: int,
               rate: int) -> np.ndarray:
    phase = (np.arange(count) * frequency / rate) % 1.0
    if waveform == "sine":
        return np.sin(2.0 * np.pi * phase)
    if waveform == "square":
        return np.where(phase < 0.5, 1.0, -1.0)
    if waveform == "triangle":
        return 4.0 * np.abs(phase - 0.5) - 1.0
    if waveform == "sawtooth":
        return 2.0 * phase - 1.0
    raise ValueError("unknown waveform %r" % waveform)


class MusicSynthesizer:
    """Renders notes with the current voice; the music device's engine."""

    def __init__(self, rate: int = 8000) -> None:
        self.rate = rate
        self.voice = Voice()
        self.tempo_bpm = 120.0

    def set_voice(self, **kwargs) -> None:
        """Update voice parameters (waveform, volume, detune_cents, adsr)."""
        adsr_keys = {"attack", "decay", "sustain", "release"}
        envelope_updates = {key: kwargs.pop(key)
                            for key in list(kwargs) if key in adsr_keys}
        for key, value in kwargs.items():
            if not hasattr(self.voice, key):
                raise ValueError("unknown voice parameter %r" % key)
            setattr(self.voice, key, value)
        if self.voice.waveform not in WAVEFORMS:
            raise ValueError("unknown waveform %r" % self.voice.waveform)
        for key, value in envelope_updates.items():
            setattr(self.voice.envelope, key, value)

    def set_state(self, tempo_bpm: float | None = None) -> None:
        if tempo_bpm is not None:
            if tempo_bpm <= 0:
                raise ValueError("tempo must be positive")
            self.tempo_bpm = tempo_bpm

    def render_note(self, note: int | str, beats: float = 1.0) -> np.ndarray:
        """Render one note for ``beats`` beats at the current tempo."""
        if isinstance(note, str):
            note = note_number(note)
        duration = beats * 60.0 / self.tempo_bpm
        frequency = note_frequency(note)
        frequency *= 2.0 ** (self.voice.detune_cents / 1200.0)
        envelope = self.voice.envelope.render(duration, self.rate)
        wave = _oscillate(self.voice.waveform, frequency, len(envelope),
                          self.rate)
        scaled = wave * envelope * self.voice.volume * 32767.0
        return saturate(np.round(scaled).astype(np.int64))

    def render_rest(self, beats: float = 1.0) -> np.ndarray:
        duration = beats * 60.0 / self.tempo_bpm
        return np.zeros(int(round(duration * self.rate)), dtype=np.int16)

    def render_melody(self, notes: list[tuple[int | str, float]]
                      ) -> np.ndarray:
        """Render ``[(note, beats), ...]``; note of ``None`` is a rest."""
        pieces = []
        for note, beats in notes:
            if note is None:
                pieces.append(self.render_rest(beats))
            else:
                pieces.append(self.render_note(note, beats))
        if not pieces:
            return np.zeros(0, dtype=np.int16)
        return np.concatenate(pieces)
