"""Tone generation: beeps, call-progress tones, test signals.

Synthesized sounds the server and the telephone exchange need: the
answering-machine "beep", ringback, busy tone, dial tone, plus generic
sine/noise generators used throughout the tests.
"""

from __future__ import annotations

import numpy as np

#: A comfortable default amplitude (about -10 dBFS).
DEFAULT_AMPLITUDE = 10000


def sine(frequency: float, duration: float, rate: int,
         amplitude: int = DEFAULT_AMPLITUDE, phase: float = 0.0) -> np.ndarray:
    """A sine tone as int16 samples."""
    count = int(round(duration * rate))
    times = np.arange(count) / rate
    wave = amplitude * np.sin(2.0 * np.pi * frequency * times + phase)
    return np.round(wave).astype(np.int16)


def dual_tone(freq_a: float, freq_b: float, duration: float, rate: int,
              amplitude: int = DEFAULT_AMPLITUDE) -> np.ndarray:
    """Two equal-amplitude sines summed (the DTMF shape)."""
    count = int(round(duration * rate))
    times = np.arange(count) / rate
    wave = (np.sin(2.0 * np.pi * freq_a * times)
            + np.sin(2.0 * np.pi * freq_b * times)) * (amplitude / 2.0)
    return np.round(wave).astype(np.int16)


def silence(duration: float, rate: int) -> np.ndarray:
    """Digital silence."""
    return np.zeros(int(round(duration * rate)), dtype=np.int16)


def white_noise(duration: float, rate: int,
                amplitude: int = DEFAULT_AMPLITUDE,
                seed: int = 0) -> np.ndarray:
    """Deterministic white noise (seeded, so tests are reproducible)."""
    generator = np.random.default_rng(seed)
    count = int(round(duration * rate))
    wave = generator.uniform(-amplitude, amplitude, count)
    return np.round(wave).astype(np.int16)


def beep(rate: int, duration: float = 0.25,
         frequency: float = 1000.0) -> np.ndarray:
    """The classic answering-machine beep, with a short fade at each end."""
    wave = sine(frequency, duration, rate).astype(np.float64)
    ramp = min(len(wave) // 8, int(0.01 * rate)) or 1
    envelope = np.ones(len(wave))
    envelope[:ramp] = np.linspace(0.0, 1.0, ramp)
    envelope[-ramp:] = np.linspace(1.0, 0.0, ramp)
    return np.round(wave * envelope).astype(np.int16)


def dial_tone(duration: float, rate: int) -> np.ndarray:
    """North American dial tone: 350 Hz + 440 Hz continuous."""
    return dual_tone(350.0, 440.0, duration, rate)


def ringback_tone(duration: float, rate: int) -> np.ndarray:
    """Ringback: 440 Hz + 480 Hz, 2 s on / 4 s off cadence."""
    wave = dual_tone(440.0, 480.0, duration, rate).astype(np.float64)
    times = np.arange(len(wave)) / rate
    gate = (times % 6.0) < 2.0
    return np.round(wave * gate).astype(np.int16)


def busy_tone(duration: float, rate: int) -> np.ndarray:
    """Busy: 480 Hz + 620 Hz, 0.5 s on / 0.5 s off cadence."""
    wave = dual_tone(480.0, 620.0, duration, rate).astype(np.float64)
    times = np.arange(len(wave)) / rate
    gate = (times % 1.0) < 0.5
    return np.round(wave * gate).astype(np.int16)
