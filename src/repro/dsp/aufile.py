"""Sun/NeXT ``.au`` audio file reading and writing.

"Most sound data will be stored in files" (paper section 5.6).  The
period-appropriate container is the Sun ``.au`` / ``.snd`` format: a
big-endian header (magic ``.snd``) followed by raw audio data.  Server
catalogues are directories of ``.au`` files.

Supported encodings map one-to-one onto our sound types: 8-bit mu-law,
8-bit A-law and 16-bit linear PCM (big-endian in the file, per the
format; converted at the boundary).
"""

from __future__ import annotations

import os
import struct

import numpy as np

from ..protocol.types import Encoding, SoundType

MAGIC = 0x2E736E64  # ".snd"
HEADER = struct.Struct(">IIIII")

#: .au encoding field values.
AU_MULAW = 1
AU_PCM16 = 3
AU_ALAW = 27

_AU_FROM_ENCODING = {
    Encoding.MULAW: AU_MULAW,
    Encoding.PCM16: AU_PCM16,
    Encoding.ALAW: AU_ALAW,
}
_ENCODING_FROM_AU = {value: key for key, value in _AU_FROM_ENCODING.items()}


class AuFileError(Exception):
    """The file is not a readable .au file."""


def write_au(path: str | os.PathLike, data: bytes,
             sound_type: SoundType, annotation: str = "") -> None:
    """Write stored sound bytes to an .au file.

    ``data`` is in our storage format (mu-law/A-law bytes, or little-
    endian PCM16, which is byte-swapped into the file's big-endian form).
    """
    try:
        au_encoding = _AU_FROM_ENCODING[sound_type.encoding]
    except KeyError:
        raise AuFileError(
            ".au cannot store %s" % sound_type.encoding.name) from None
    if sound_type.encoding is Encoding.PCM16:
        body = np.frombuffer(data, dtype="<i2").astype(">i2").tobytes()
    else:
        body = bytes(data)
    note = annotation.encode("utf-8") + b"\0"
    # Pad the annotation so the data offset stays 4-byte aligned.
    note += b"\0" * (-len(note) % 4)
    header = HEADER.pack(MAGIC, HEADER.size + len(note), len(body),
                         au_encoding, sound_type.samplerate)
    with open(path, "wb") as stream:
        stream.write(header)
        stream.write(note)
        stream.write(body)


def read_au(path: str | os.PathLike) -> tuple[bytes, SoundType, str]:
    """Read an .au file; returns (stored bytes, sound type, annotation)."""
    with open(path, "rb") as stream:
        raw = stream.read()
    if len(raw) < HEADER.size:
        raise AuFileError("file too short for an .au header")
    magic, data_offset, data_size, au_encoding, rate = HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise AuFileError("bad .au magic 0x%08x" % magic)
    if data_offset < HEADER.size or data_offset > len(raw):
        raise AuFileError("bad .au data offset %d" % data_offset)
    try:
        encoding = _ENCODING_FROM_AU[au_encoding]
    except KeyError:
        raise AuFileError(
            "unsupported .au encoding %d" % au_encoding) from None
    annotation = raw[HEADER.size:data_offset].split(b"\0", 1)[0]
    if data_size == 0xFFFFFFFF:     # "unknown size" convention
        body = raw[data_offset:]
    else:
        body = raw[data_offset:data_offset + data_size]
    if encoding is Encoding.PCM16:
        usable = len(body) - (len(body) % 2)
        body = np.frombuffer(body[:usable],
                             dtype=">i2").astype("<i2").tobytes()
        samplesize = 16
    else:
        samplesize = 8
    sound_type = SoundType(encoding, samplesize, rate)
    return body, sound_type, annotation.decode("utf-8", "replace")
