"""IMA ADPCM codec (4 bits per sample).

The paper's footnote: "Adaptive Delta Pulse Code Modulation, a compression
algorithm, can reduce audio data rates by about one half" (relative to
8-bit mu-law).  This is the standard IMA/DVI ADPCM algorithm: a 4-bit code
per sample, an adaptive step size driven by the index table.

The encoder emits a small header (initial predictor and step index) so a
stream can be decoded from the start without out-of-band state; two 4-bit
codes pack per byte, low nibble first.
"""

from __future__ import annotations

import struct

import numpy as np

_STEP_TABLE = np.array([
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
], dtype=np.int32)

_INDEX_TABLE = np.array(
    [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8],
    dtype=np.int32)

#: Bytes of header preceding the nibble stream.
HEADER_SIZE = 4


def adpcm_encode(samples: np.ndarray) -> bytes:
    """Encode int16 linear samples to an IMA ADPCM stream with header."""
    pcm = np.asarray(samples, dtype=np.int32)
    predictor = int(pcm[0]) if len(pcm) else 0
    index = 0
    header = struct.pack("<hBx", predictor, index)
    codes = bytearray((len(pcm) + 1) // 2)
    nibble_high = False
    byte_pos = 0
    for sample in pcm:
        step = int(_STEP_TABLE[index])
        diff = int(sample) - predictor
        code = 0
        if diff < 0:
            code = 8
            diff = -diff
        delta = step >> 3
        if diff >= step:
            code |= 4
            diff -= step
            delta += step
        step >>= 1
        if diff >= step:
            code |= 2
            diff -= step
            delta += step
        step >>= 1
        if diff >= step:
            code |= 1
            delta += step
        if code & 8:
            predictor -= delta
        else:
            predictor += delta
        predictor = max(-32768, min(32767, predictor))
        index = max(0, min(88, index + int(_INDEX_TABLE[code])))
        if nibble_high:
            codes[byte_pos] |= code << 4
            byte_pos += 1
        else:
            codes[byte_pos] = code
        nibble_high = not nibble_high
    return header + bytes(codes)


def adpcm_decode(data: bytes) -> np.ndarray:
    """Decode an IMA ADPCM stream (with header) to int16 linear samples."""
    if len(data) < HEADER_SIZE:
        return np.zeros(0, dtype=np.int16)
    predictor, index = struct.unpack_from("<hBx", data)
    index = max(0, min(88, index))
    body = np.frombuffer(data, dtype=np.uint8, offset=HEADER_SIZE)
    nibbles = np.empty(len(body) * 2, dtype=np.uint8)
    nibbles[0::2] = body & 0x0F
    nibbles[1::2] = body >> 4
    out = np.empty(len(nibbles), dtype=np.int16)
    pred = int(predictor)
    for position, code in enumerate(nibbles):
        step = int(_STEP_TABLE[index])
        delta = step >> 3
        if code & 4:
            delta += step
        if code & 2:
            delta += step >> 1
        if code & 1:
            delta += step >> 2
        if code & 8:
            pred -= delta
        else:
            pred += delta
        pred = max(-32768, min(32767, pred))
        out[position] = pred
        index = max(0, min(88, index + int(_INDEX_TABLE[code])))
    return out


def frames_in(data_length: int) -> int:
    """Number of samples stored in an ADPCM blob of ``data_length`` bytes."""
    if data_length <= HEADER_SIZE:
        return 0
    return (data_length - HEADER_SIZE) * 2
