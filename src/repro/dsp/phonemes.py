"""Phoneme inventory and letter-to-sound rules.

Text-to-speech "is usually broken into two processing steps.  The first
step converts the text to phonetic units ... most easily implemented on a
general purpose processor" (paper section 1.1).  This module is that
first step: a compact rule-based letter-to-phoneme converter in the
spirit of the classic Naval Research Laboratory rules, plus the phoneme
inventory (with formant targets) the vocal tract model consumes.

It is intentionally small -- the goal is intelligible-ish, *distinct*
audio per word flowing through the real device path, not a competitive
synthesizer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Phoneme:
    """One phonetic unit with the acoustic targets the vocal tract needs."""

    symbol: str
    kind: str               # "vowel" | "fricative" | "stop" | "nasal"
    duration: float         # nominal seconds at normal rate
    formants: tuple[float, ...] = ()    # F1..F3 for voiced sounds
    voiced: bool = True
    noise_band: tuple[float, float] | None = None   # fricative band


#: The inventory, indexed by symbol.
PHONEMES: dict[str, Phoneme] = {}


def _add(symbol: str, kind: str, duration: float,
         formants: tuple[float, ...] = (), voiced: bool = True,
         noise_band: tuple[float, float] | None = None) -> None:
    PHONEMES[symbol] = Phoneme(symbol, kind, duration, formants, voiced,
                               noise_band)


# Vowels: (F1, F2, F3) from the Peterson-Barney averages.
_add("IY", "vowel", 0.14, (270.0, 2290.0, 3010.0))    # beet
_add("IH", "vowel", 0.10, (390.0, 1990.0, 2550.0))    # bit
_add("EH", "vowel", 0.11, (530.0, 1840.0, 2480.0))    # bet
_add("AE", "vowel", 0.14, (660.0, 1720.0, 2410.0))    # bat
_add("AA", "vowel", 0.14, (730.0, 1090.0, 2440.0))    # father
_add("AO", "vowel", 0.13, (570.0, 840.0, 2410.0))     # bought
_add("UH", "vowel", 0.10, (440.0, 1020.0, 2240.0))    # book
_add("UW", "vowel", 0.13, (300.0, 870.0, 2240.0))     # boot
_add("AH", "vowel", 0.10, (640.0, 1190.0, 2390.0))    # but
_add("ER", "vowel", 0.12, (490.0, 1350.0, 1690.0))    # bird
_add("EY", "vowel", 0.14, (480.0, 2100.0, 2700.0))    # bait
_add("AY", "vowel", 0.16, (660.0, 1400.0, 2500.0))    # bite
_add("OW", "vowel", 0.14, (500.0, 900.0, 2400.0))     # boat
_add("AW", "vowel", 0.16, (640.0, 1100.0, 2400.0))    # bout
_add("OY", "vowel", 0.16, (550.0, 1100.0, 2500.0))    # boy

# Semivowels and liquids: treated as short vowels.
_add("W", "vowel", 0.07, (300.0, 700.0, 2200.0))
_add("Y", "vowel", 0.07, (280.0, 2250.0, 2900.0))
_add("R", "vowel", 0.08, (420.0, 1300.0, 1600.0))
_add("L", "vowel", 0.08, (380.0, 1000.0, 2600.0))

# Nasals: low first formant, damped.
_add("M", "nasal", 0.08, (250.0, 1000.0, 2200.0))
_add("N", "nasal", 0.08, (250.0, 1400.0, 2300.0))
_add("NG", "nasal", 0.09, (250.0, 1600.0, 2300.0))

# Fricatives: noise shaped into a band; voiced ones add a formant buzz.
_add("S", "fricative", 0.10, (), voiced=False, noise_band=(3500.0, 3900.0))
_add("Z", "fricative", 0.09, (250.0, 1400.0, 2300.0), voiced=True,
     noise_band=(3500.0, 3900.0))
_add("SH", "fricative", 0.10, (), voiced=False, noise_band=(2000.0, 3000.0))
_add("ZH", "fricative", 0.09, (250.0, 1600.0, 2300.0), voiced=True,
     noise_band=(2000.0, 3000.0))
_add("F", "fricative", 0.09, (), voiced=False, noise_band=(1500.0, 3800.0))
_add("V", "fricative", 0.08, (250.0, 1000.0, 2200.0), voiced=True,
     noise_band=(1500.0, 3800.0))
_add("TH", "fricative", 0.09, (), voiced=False, noise_band=(1400.0, 3700.0))
_add("DH", "fricative", 0.08, (250.0, 1200.0, 2300.0), voiced=True,
     noise_band=(1400.0, 3700.0))
_add("HH", "fricative", 0.07, (), voiced=False, noise_band=(500.0, 2500.0))

# Stops: closure silence then a burst.
_add("P", "stop", 0.09, (), voiced=False, noise_band=(500.0, 1500.0))
_add("B", "stop", 0.08, (300.0, 900.0, 2200.0), voiced=True,
     noise_band=(500.0, 1500.0))
_add("T", "stop", 0.09, (), voiced=False, noise_band=(2500.0, 3900.0))
_add("D", "stop", 0.08, (300.0, 1700.0, 2500.0), voiced=True,
     noise_band=(2500.0, 3900.0))
_add("K", "stop", 0.09, (), voiced=False, noise_band=(1500.0, 2500.0))
_add("G", "stop", 0.08, (300.0, 1800.0, 2300.0), voiced=True,
     noise_band=(1500.0, 2500.0))
_add("CH", "stop", 0.11, (), voiced=False, noise_band=(2000.0, 3200.0))
_add("JH", "stop", 0.10, (300.0, 1700.0, 2400.0), voiced=True,
     noise_band=(2000.0, 3200.0))

#: Inter-word / punctuation pause pseudo-phonemes.
_add("PAUSE", "pause", 0.12, (), voiced=False)
_add("LONG_PAUSE", "pause", 0.30, (), voiced=False)


# ---------------------------------------------------------------------------
# Letter-to-sound rules
# ---------------------------------------------------------------------------

# Each rule is (grapheme, phonemes).  At every text position the longest
# matching grapheme wins; this greedy longest-match scheme plus a digraph
# table gets surprisingly far for the prompts desktop audio speaks.
_DIGRAPHS: list[tuple[str, list[str]]] = [
    ("tion", ["SH", "AH", "N"]),
    ("ight", ["AY", "T"]),
    ("ough", ["OW"]),
    ("augh", ["AO"]),
    ("eigh", ["EY"]),
    ("ing", ["IH", "NG"]),
    ("sch", ["S", "K"]),
    ("tch", ["CH"]),
    ("ch", ["CH"]),
    ("sh", ["SH"]),
    ("th", ["TH"]),
    ("ph", ["F"]),
    ("wh", ["W"]),
    ("ck", ["K"]),
    ("ng", ["NG"]),
    ("qu", ["K", "W"]),
    ("ee", ["IY"]),
    ("ea", ["IY"]),
    ("oo", ["UW"]),
    ("ou", ["AW"]),
    ("ow", ["OW"]),
    ("oi", ["OY"]),
    ("oy", ["OY"]),
    ("ai", ["EY"]),
    ("ay", ["EY"]),
    ("au", ["AO"]),
    ("aw", ["AO"]),
    ("ar", ["AA", "R"]),
    ("er", ["ER"]),
    ("ir", ["ER"]),
    ("ur", ["ER"]),
    ("or", ["AO", "R"]),
]

_SINGLE: dict[str, list[str]] = {
    "a": ["AE"], "b": ["B"], "c": ["K"], "d": ["D"], "e": ["EH"],
    "f": ["F"], "g": ["G"], "h": ["HH"], "i": ["IH"], "j": ["JH"],
    "k": ["K"], "l": ["L"], "m": ["M"], "n": ["N"], "o": ["AA"],
    "p": ["P"], "q": ["K"], "r": ["R"], "s": ["S"], "t": ["T"],
    "u": ["AH"], "v": ["V"], "w": ["W"], "x": ["K", "S"], "y": ["Y"],
    "z": ["Z"],
}

_DIGIT_WORDS = {
    "0": "zero", "1": "one", "2": "two", "3": "three", "4": "four",
    "5": "five", "6": "six", "7": "seven", "8": "eight", "9": "nine",
}


#: "Magic e": the long vowel a silent final 'e' gives the prior vowel.
_LENGTHEN = {"AE": "EY", "EH": "IY", "IH": "AY", "AA": "OW", "AH": "UW"}

_VOWEL_LETTERS = set("aeiou")


def word_to_phonemes(word: str) -> list[str]:
    """Convert one lowercase word to phoneme symbols (greedy rules)."""
    word = word.lower()
    phonemes: list[str] = []
    position = 0
    while position < len(word):
        # Final silent 'e' ("...VCe" with 4+ letters): drop the 'e' and
        # lengthen the preceding vowel (tone -> OW, nine -> AY).
        if (word[position] == "e" and position == len(word) - 1
                and position >= 3
                and word[position - 1] not in _VOWEL_LETTERS
                and any(letter in _VOWEL_LETTERS
                        for letter in word[:position - 1])):
            for back in range(len(phonemes) - 1, -1, -1):
                replacement = _LENGTHEN.get(phonemes[back])
                if replacement is not None:
                    phonemes[back] = replacement
                    break
            position += 1
            continue
        for grapheme, symbols in _DIGRAPHS:
            if word.startswith(grapheme, position):
                phonemes.extend(symbols)
                position += len(grapheme)
                break
        else:
            letter = word[position]
            phonemes.extend(_SINGLE.get(letter, []))
            position += 1
    return phonemes


def text_to_phonemes(text: str,
                     exceptions: dict[str, list[str]] | None = None
                     ) -> list[str]:
    """Convert text to phoneme symbols, honoring an exception list.

    ``exceptions`` maps lowercase words to explicit phoneme sequences --
    the protocol's SetExceptionList "allows applications to override the
    normal pronunciation of words, such as names or technical terms".
    Digits are spoken as words; sentence punctuation becomes pauses.
    """
    exceptions = exceptions or {}
    phonemes: list[str] = []
    word: list[str] = []

    def flush_word() -> None:
        if not word:
            return
        text_word = "".join(word)
        override = exceptions.get(text_word)
        if override is not None:
            phonemes.extend(override)
        else:
            phonemes.extend(word_to_phonemes(text_word))
        phonemes.append("PAUSE")
        word.clear()

    for char in text.lower():
        if char.isalpha():
            word.append(char)
        elif char.isdigit():
            flush_word()
            phonemes.extend(word_to_phonemes(_DIGIT_WORDS[char]))
            phonemes.append("PAUSE")
        elif char in ".!?;:":
            flush_word()
            phonemes.append("LONG_PAUSE")
        else:
            flush_word()
    flush_word()
    while phonemes and phonemes[-1] in ("PAUSE", "LONG_PAUSE"):
        phonemes.pop()
    return phonemes
