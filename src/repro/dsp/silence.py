"""Silence and pause handling.

Two recorder capabilities from the paper (section 5.1):

* "pause detection to terminate recording" -- the answering machine's
  Record command ends "after a pause" (section 5.9);
* "compress the recorded audio by removing pauses".

Both are energy-based with hangover, the standard speech endpointing
approach.
"""

from __future__ import annotations

import numpy as np


class PauseDetector:
    """Streaming trailing-silence detector.

    Feed blocks; :meth:`feed` returns True once ``pause_seconds`` of
    continuous sub-threshold audio have accumulated *after* some speech
    was heard (leading silence before the caller starts talking must not
    end the recording).
    """

    def __init__(self, rate: int, pause_seconds: float = 2.0,
                 threshold: float = 300.0,
                 require_speech_first: bool = True) -> None:
        self.rate = rate
        self.pause_samples = int(pause_seconds * rate)
        self.threshold = threshold
        self.require_speech_first = require_speech_first
        self._silent_run = 0
        self._heard_speech = False

    def feed(self, samples: np.ndarray) -> bool:
        """Process a block; True if the pause condition is now met."""
        block = np.asarray(samples, dtype=np.float64)
        if len(block) == 0:
            return self._triggered()
        level = float(np.sqrt(np.mean(block * block)))
        if level >= self.threshold:
            self._heard_speech = True
            self._silent_run = 0
        else:
            self._silent_run += len(block)
        return self._triggered()

    def _triggered(self) -> bool:
        if self.require_speech_first and not self._heard_speech:
            return False
        return self._silent_run >= self.pause_samples

    def reset(self) -> None:
        self._silent_run = 0
        self._heard_speech = False


def find_speech_runs(samples: np.ndarray, rate: int,
                     threshold: float = 300.0,
                     frame_ms: int = 20,
                     hangover_ms: int = 150) -> list[tuple[int, int]]:
    """Locate (start, end) sample ranges containing speech.

    Frames with RMS above the threshold are speech; gaps shorter than the
    hangover are bridged so a single utterance is not split on weak
    consonants.
    """
    block = np.asarray(samples, dtype=np.float64)
    frame = max(1, rate * frame_ms // 1000)
    count = len(block) // frame
    if count == 0:
        return []
    frames = block[:count * frame].reshape(count, frame)
    levels = np.sqrt(np.mean(frames * frames, axis=1))
    active = levels >= threshold
    hangover_frames = max(1, hangover_ms // frame_ms)
    runs: list[tuple[int, int]] = []
    start: int | None = None
    gap = 0
    for index, is_active in enumerate(active):
        if is_active:
            if start is None:
                start = index
            gap = 0
        elif start is not None:
            gap += 1
            if gap > hangover_frames:
                runs.append((start * frame, (index - gap + 1) * frame))
                start = None
                gap = 0
    if start is not None:
        runs.append((start * frame, count * frame))
    return runs


def compress_pauses(samples: np.ndarray, rate: int,
                    threshold: float = 300.0,
                    keep_ms: int = 200) -> np.ndarray:
    """Remove long pauses, keeping ``keep_ms`` of each (pause compression).

    The output preserves every speech run and collapses the silence
    between runs to at most ``keep_ms`` milliseconds.
    """
    runs = find_speech_runs(samples, rate, threshold=threshold)
    if not runs:
        return np.zeros(0, dtype=np.int16)
    keep = rate * keep_ms // 1000
    pieces: list[np.ndarray] = []
    previous_end = None
    block = np.asarray(samples, dtype=np.int16)
    for start, end in runs:
        if previous_end is not None:
            gap = start - previous_end
            pieces.append(block[previous_end:previous_end + min(gap, keep)])
        pieces.append(block[start:end])
        previous_end = end
    return np.concatenate(pieces)
