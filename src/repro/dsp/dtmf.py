"""DTMF (touch-tone) generation and detection.

Touch tones carry the protocol's SendDTMF command across the simulated
telephone network, and the detector behind DTMF_NOTIFY events lets
telephone-based applications ("dial by name", touch-tone menus) see the
caller's key presses.

Generation produces the standard dual-tone pairs; detection runs a
Goertzel bank over fixed analysis frames with the usual guards (row/column
dominance, twist limit, minimum duration) and de-duplicates held digits.
"""

from __future__ import annotations

import numpy as np

from .goertzel import goertzel_powers
from .tones import dual_tone, silence

#: Row and column frequencies of the 4x4 DTMF keypad.
ROW_FREQUENCIES = (697.0, 770.0, 852.0, 941.0)
COLUMN_FREQUENCIES = (1209.0, 1336.0, 1477.0, 1633.0)

_KEYPAD = (
    ("1", "2", "3", "A"),
    ("4", "5", "6", "B"),
    ("7", "8", "9", "C"),
    ("*", "0", "#", "D"),
)

DIGITS = frozenset(digit for row in _KEYPAD for digit in row)

_DIGIT_TO_PAIR = {
    _KEYPAD[row][col]: (ROW_FREQUENCIES[row], COLUMN_FREQUENCIES[col])
    for row in range(4) for col in range(4)
}


def digit_frequencies(digit: str) -> tuple[float, float]:
    """The (row, column) frequency pair of one keypad digit."""
    try:
        return _DIGIT_TO_PAIR[digit.upper()]
    except KeyError:
        raise ValueError("not a DTMF digit: %r" % digit) from None


def generate_digit(digit: str, rate: int, duration: float = 0.08,
                   amplitude: int = 12000) -> np.ndarray:
    """Samples of one touch tone."""
    row, column = digit_frequencies(digit)
    return dual_tone(row, column, duration, rate, amplitude)


def generate_digits(digits: str, rate: int, tone_duration: float = 0.08,
                    gap_duration: float = 0.08,
                    amplitude: int = 12000) -> np.ndarray:
    """Samples of a digit string with inter-digit gaps."""
    parts: list[np.ndarray] = []
    for digit in digits:
        parts.append(generate_digit(digit, rate, tone_duration, amplitude))
        parts.append(silence(gap_duration, rate))
    if not parts:
        return np.zeros(0, dtype=np.int16)
    return np.concatenate(parts)


class DtmfDetector:
    """Streaming DTMF detector.

    Feed arbitrary sample blocks; collect the digits detected so far.
    A digit is reported once when first confirmed (two consecutive
    agreeing analysis frames) and not again until a non-digit frame
    separates it from the next press.
    """

    #: Analysis frame length in milliseconds; 13 ms frames need two
    #: agreeing frames, comfortably inside a 40 ms minimum tone.
    FRAME_MS = 13

    def __init__(self, rate: int, threshold: float = 1.0e4,
                 confirm_frames: int = 2) -> None:
        self.rate = rate
        self.threshold = threshold
        self.confirm_frames = confirm_frames
        self._frame_length = max(1, rate * self.FRAME_MS // 1000)
        self._pending = np.zeros(0, dtype=np.int16)
        self._candidate: str | None = None
        self._candidate_count = 0
        self._reported: str | None = None

    def feed(self, samples: np.ndarray) -> list[str]:
        """Process a block; return digits newly confirmed within it."""
        self._pending = np.concatenate(
            [self._pending, np.asarray(samples, dtype=np.int16)])
        detected: list[str] = []
        while len(self._pending) >= self._frame_length:
            frame = self._pending[:self._frame_length]
            self._pending = self._pending[self._frame_length:]
            digit = self._classify(frame)
            if digit is None:
                self._candidate = None
                self._candidate_count = 0
                self._reported = None
                continue
            if digit == self._candidate:
                self._candidate_count += 1
            else:
                self._candidate = digit
                self._candidate_count = 1
            confirmed = self._candidate_count >= self.confirm_frames
            if confirmed and digit != self._reported:
                self._reported = digit
                detected.append(digit)
        return detected

    def _classify(self, frame: np.ndarray) -> str | None:
        """Classify one analysis frame as a digit or silence/speech."""
        frequencies = list(ROW_FREQUENCIES) + list(COLUMN_FREQUENCIES)
        powers = goertzel_powers(frame, frequencies, self.rate)
        row_powers = powers[:4]
        column_powers = powers[4:]
        row_index = int(np.argmax(row_powers))
        column_index = int(np.argmax(column_powers))
        row_power = row_powers[row_index]
        column_power = column_powers[column_index]
        if row_power < self.threshold or column_power < self.threshold:
            return None
        # Twist guard: the two tones must be within ~8 dB of each other.
        stronger = max(row_power, column_power)
        weaker = min(row_power, column_power)
        if weaker == 0.0 or stronger / weaker > 6.3:
            return None
        # Dominance guard: next-strongest row/column must be well below.
        for powers_group, best_index in ((row_powers, row_index),
                                         (column_powers, column_index)):
            rest = [value for position, value in enumerate(powers_group)
                    if position != best_index]
            if rest and max(rest) > 0.3 * powers_group[best_index]:
                return None
        return _KEYPAD[row_index][column_index]
