"""Automatic gain control.

The paper lists "whether the recorder supports automatic gain control
(AGC) during recording" among recorder attributes (section 5.1); our
recorder device applies this block-based AGC when the attribute is set.

Classic feed-forward design: track a smoothed RMS estimate and steer the
gain toward a target level, with separate attack and release rates and a
hard gain ceiling so silence is not amplified into noise.
"""

from __future__ import annotations

import numpy as np

from .mixing import saturate


class AutomaticGainControl:
    """Block-based AGC with attack/release smoothing."""

    def __init__(self, rate: int, target_rms: float = 8000.0,
                 max_gain: float = 8.0, attack: float = 0.5,
                 release: float = 0.05,
                 noise_floor: float = 100.0) -> None:
        self.rate = rate
        self.target_rms = target_rms
        self.max_gain = max_gain
        self.attack = attack      # smoothing when gain must drop (fast)
        self.release = release    # smoothing when gain may rise (slow)
        self.noise_floor = noise_floor
        self._gain = 1.0

    @property
    def gain(self) -> float:
        """The currently applied gain (for tests and metering)."""
        return self._gain

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Apply AGC to one block, updating internal state."""
        block = np.asarray(samples, dtype=np.float64)
        if len(block) == 0:
            return np.zeros(0, dtype=np.int16)
        level = float(np.sqrt(np.mean(block * block)))
        if level <= self.noise_floor:
            # Hold the gain during silence rather than pumping it up.
            desired = self._gain
        else:
            desired = min(self.target_rms / level, self.max_gain)
        rate = self.attack if desired < self._gain else self.release
        self._gain += (desired - self._gain) * rate
        return saturate(np.round(block * self._gain).astype(np.int64))

    def reset(self) -> None:
        self._gain = 1.0
