"""Goertzel single-bin DFT, the classic DTMF detector building block.

The Goertzel algorithm computes the power at one target frequency with a
two-tap recurrence -- far cheaper than a full FFT when only a handful of
frequencies matter, which is why real telephony DSPs used it and why we
do too.
"""

from __future__ import annotations

import math

import numpy as np


def goertzel_power(samples: np.ndarray, frequency: float, rate: int) -> float:
    """Normalized signal power at ``frequency`` over the whole block.

    Returns power normalized by block length squared so that a unit-
    amplitude sine at the target frequency yields roughly 0.25 regardless
    of block size.
    """
    block = np.asarray(samples, dtype=np.float64)
    count = len(block)
    if count == 0:
        return 0.0
    # Nearest integer bin keeps the detector leakage-free for tones that
    # last an integral number of cycles.
    bin_index = int(round(frequency * count / rate))
    omega = 2.0 * math.pi * bin_index / count
    coefficient = 2.0 * math.cos(omega)
    s_prev = 0.0
    s_prev2 = 0.0
    for value in block:
        s_current = value + coefficient * s_prev - s_prev2
        s_prev2 = s_prev
        s_prev = s_current
    power = (s_prev2 * s_prev2 + s_prev * s_prev
             - coefficient * s_prev * s_prev2)
    return power / (count * count)


def goertzel_powers(samples: np.ndarray, frequencies: list[float],
                    rate: int) -> list[float]:
    """Powers at several frequencies, vectorized across the block.

    Equivalent to calling :func:`goertzel_power` per frequency but runs
    the recurrences in lock-step with numpy, which matters when scanning
    every audio block for DTMF.
    """
    block = np.asarray(samples, dtype=np.float64)
    count = len(block)
    if count == 0:
        return [0.0] * len(frequencies)
    bins = np.round(np.array(frequencies) * count / rate)
    omegas = 2.0 * np.pi * bins / count
    coefficients = 2.0 * np.cos(omegas)
    s_prev = np.zeros(len(frequencies))
    s_prev2 = np.zeros(len(frequencies))
    for value in block:
        s_current = value + coefficients * s_prev - s_prev2
        s_prev2 = s_prev
        s_prev = s_current
    powers = (s_prev2 * s_prev2 + s_prev * s_prev
              - coefficients * s_prev * s_prev2)
    return list(powers / (count * count))
