"""Sample-rate conversion.

Wires between devices running at different rates (a CD-quality player
feeding a telephone-rate line, say) need resampling.  Linear
interpolation is plenty for voice-grade audio and is exactly what a 1991
workstation would have afforded.
"""

from __future__ import annotations

import numpy as np


def resample(samples: np.ndarray, from_rate: int, to_rate: int) -> np.ndarray:
    """Resample int16 linear samples between rates (linear interpolation).

    The output length is ``round(len * to_rate / from_rate)`` so that
    durations are preserved to within half an output sample.
    """
    if from_rate <= 0 or to_rate <= 0:
        raise ValueError("sample rates must be positive")
    if from_rate == to_rate or len(samples) == 0:
        return np.asarray(samples, dtype=np.int16)
    src = np.asarray(samples, dtype=np.float64)
    out_length = int(round(len(src) * to_rate / from_rate))
    if out_length == 0:
        return np.zeros(0, dtype=np.int16)
    # Sample positions in the source timeline.
    positions = np.arange(out_length) * (from_rate / to_rate)
    resampled = np.interp(positions, np.arange(len(src)), src)
    return np.clip(np.round(resampled), -32768, 32767).astype(np.int16)


class StreamResampler:
    """Stateful block-by-block resampler for live wires.

    Keeps the last source sample across blocks so consecutive calls
    produce the same waveform a one-shot :func:`resample` would, without
    clicks at block boundaries.
    """

    def __init__(self, from_rate: int, to_rate: int) -> None:
        if from_rate <= 0 or to_rate <= 0:
            raise ValueError("sample rates must be positive")
        self.from_rate = from_rate
        self.to_rate = to_rate
        self._ratio = from_rate / to_rate
        self._position = 0.0        # source-sample position of next output
        # Scratch state, reused block to block so the steady-state path
        # allocates nothing but the output array: the tail lives at the
        # front of one preallocated float64 buffer, and the arange
        # ramps np.interp needs are cached per length.
        self._buffer = np.zeros(0, dtype=np.float64)
        self._tail_len = 0
        self._index_cache: dict[int, np.ndarray] = {}

    def _indices(self, length: int) -> np.ndarray:
        """``np.arange(length)`` cached; lengths repeat every block."""
        found = self._index_cache.get(length)
        if found is None:
            if len(self._index_cache) > 32:     # rate change churn guard
                self._index_cache.clear()
            found = self._index_cache[length] = np.arange(
                length, dtype=np.float64)
        return found

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Feed a block of source samples, get the resampled block."""
        if self.from_rate == self.to_rate:
            return np.asarray(samples, dtype=np.int16)
        fresh = np.asarray(samples)
        total = self._tail_len + len(fresh)
        if total > len(self._buffer):
            grown = np.zeros(total, dtype=np.float64)
            grown[:self._tail_len] = self._buffer[:self._tail_len]
            self._buffer = grown
        self._buffer[self._tail_len:total] = fresh
        src = self._buffer[:total]
        if total < 2:
            self._tail_len = total
            return np.zeros(0, dtype=np.int16)
        # Generate outputs whose source position stays inside [0, len-1).
        limit = total - 1
        count = int(np.floor((limit - self._position) / self._ratio))
        if count <= 0:
            self._tail_len = total
            return np.zeros(0, dtype=np.int16)
        positions = self._position + self._indices(count) * self._ratio
        output = np.interp(positions, self._indices(total), src)
        next_position = self._position + count * self._ratio
        keep_from = int(np.floor(next_position))
        keep = total - keep_from
        # Overlap-safe move of the kept tail to the buffer's front.
        self._buffer[:keep] = src[keep_from:total].copy()
        self._tail_len = keep
        self._position = next_position - keep_from
        return np.clip(np.round(output), -32768, 32767).astype(np.int16)
