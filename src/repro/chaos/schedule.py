"""Deterministic, seeded fault schedules.

A :class:`FaultSchedule` is the *policy* half of the chaos harness: for
every chunk of bytes the proxy is about to forward it produces one
:class:`Decision` -- how long to delay, whether to truncate the chunk,
whether to reset or partition the link.  All randomness comes from one
``random.Random(seed)``, consumed in decision order, so a given seed
always produces the same fault sequence for the same traffic pattern --
a chaos failure seen in CI replays exactly on a laptop.

Deterministic one-shot triggers (``reset_after_bytes``) complement the
probabilistic knobs for tests that need a fault at an exact point in
the byte stream regardless of seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Pump directions: client-to-server and server-to-client.
UP = "up"
DOWN = "down"


@dataclass(frozen=True)
class Decision:
    """What the proxy should do to one chunk about to be forwarded."""

    #: Seconds to sleep before forwarding (latency + jitter + throttle).
    delay: float = 0.0
    #: Forward only this many bytes, then discard the rest of the chunk
    #: (None = forward everything).  Truncation corrupts framing by
    #: design: the receiver sees a clean prefix and then silence.
    truncate: int | None = None
    #: Hard-close both halves of the link mid-message.
    reset: bool = False
    #: Stop forwarding in both directions for ``partition_seconds``.
    partition: bool = False


class FaultSchedule:
    """Seeded decision stream for one proxied link (or many).

    The knobs compose: every chunk gets latency; throttling adds
    byte-proportional delay; truncation, resets and partitions fire
    probabilistically (or at an exact byte offset via
    ``reset_after_bytes``).  A schedule with all defaults is a clean
    passthrough -- chaos is strictly opt-in per knob.
    """

    def __init__(self, seed: int = 0, *,
                 latency: float = 0.0,
                 jitter: float = 0.0,
                 throttle_bytes_per_sec: float | None = None,
                 truncate_probability: float = 0.0,
                 reset_probability: float = 0.0,
                 partition_probability: float = 0.0,
                 partition_seconds: float = 0.1,
                 reset_after_bytes: dict[str, int] | None = None,
                 max_resets: int | None = None) -> None:
        self.seed = seed
        self.latency = latency
        self.jitter = jitter
        self.throttle_bytes_per_sec = throttle_bytes_per_sec
        self.truncate_probability = truncate_probability
        self.reset_probability = reset_probability
        self.partition_probability = partition_probability
        self.partition_seconds = partition_seconds
        #: Direction -> byte offset past which exactly one reset fires.
        self.reset_after_bytes = dict(reset_after_bytes or {})
        self.max_resets = max_resets
        self._rng = random.Random(seed)
        self._bytes: dict[str, int] = {UP: 0, DOWN: 0}
        self._resets_fired = 0

    def decide(self, direction: str, nbytes: int) -> Decision:
        """One decision for ``nbytes`` about to flow in ``direction``."""
        self._bytes[direction] = self._bytes.get(direction, 0) + nbytes
        delay = 0.0
        if self.latency or self.jitter:
            delay += self.latency + self.jitter * self._rng.random()
        if self.throttle_bytes_per_sec:
            delay += nbytes / self.throttle_bytes_per_sec
        threshold = self.reset_after_bytes.get(direction)
        if threshold is not None and self._bytes[direction] >= threshold:
            del self.reset_after_bytes[direction]
            self._resets_fired += 1
            return Decision(delay=delay, reset=True)
        truncate = None
        if self.truncate_probability and \
                self._rng.random() < self.truncate_probability:
            truncate = self._rng.randrange(nbytes) if nbytes > 1 else 0
        reset = False
        if self.reset_probability and self._reset_allowed() and \
                self._rng.random() < self.reset_probability:
            self._resets_fired += 1
            reset = True
        partition = False
        if self.partition_probability and \
                self._rng.random() < self.partition_probability:
            partition = True
        return Decision(delay=delay, truncate=truncate, reset=reset,
                        partition=partition)

    def _reset_allowed(self) -> bool:
        return self.max_resets is None or self._resets_fired < self.max_resets

    def fingerprint(self, traffic: list[tuple[str, int]]) -> list[Decision]:
        """The decision sequence this schedule yields for ``traffic``.

        Purely functional over a *fresh copy* of the schedule -- used by
        tests to prove seed determinism without touching live state.
        """
        clone = FaultSchedule(
            self.seed, latency=self.latency, jitter=self.jitter,
            throttle_bytes_per_sec=self.throttle_bytes_per_sec,
            truncate_probability=self.truncate_probability,
            reset_probability=self.reset_probability,
            partition_probability=self.partition_probability,
            partition_seconds=self.partition_seconds,
            reset_after_bytes=self.reset_after_bytes,
            max_resets=self.max_resets)
        return [clone.decide(direction, nbytes)
                for direction, nbytes in traffic]
