"""Pytest fixture layer: run any test under chaos.

Importing these names in ``tests/conftest.py`` makes the chaos harness
available everywhere::

    from repro.chaos.fixtures import (          # noqa: F401
        chaos_client, chaos_proxy, make_chaos_proxy)

``chaos_proxy`` gives a clean-passthrough proxy in front of the standard
``server`` fixture; ``make_chaos_proxy`` builds proxies with custom
fault schedules; ``chaos_client`` is a reconnecting Alib client wired
through the proxy.  :func:`raw_setup` is the raw-socket helper the
failure-injection tests share.
"""

from __future__ import annotations

import socket

import pytest

from ..alib import AudioClient
from ..protocol.setup import SetupRequest
from .proxy import ChaosProxy
from .schedule import FaultSchedule


def raw_setup(port: int, client_name: str = "raw",
              host: str = "127.0.0.1") -> socket.socket:
    """A bare socket just past the setup handshake (no Alib machinery).

    For tests that feed the server hand-crafted bytes; the caller owns
    (and must close) the socket.
    """
    sock = socket.create_connection((host, port))
    sock.sendall(SetupRequest(client_name=client_name).encode())
    sock.recv(4096)     # setup reply; contents irrelevant to raw tests
    return sock


@pytest.fixture
def make_chaos_proxy(server):
    """Factory for chaos proxies in front of the ``server`` fixture.

    ``factory(schedule=FaultSchedule(seed=7, ...))`` starts a proxy with
    that fault schedule; all proxies stop at teardown.
    """
    created: list[ChaosProxy] = []

    def factory(schedule: FaultSchedule | None = None,
                metrics=None) -> ChaosProxy:
        proxy = ChaosProxy(("127.0.0.1", server.port), schedule=schedule,
                           metrics=metrics)
        proxy.start()
        created.append(proxy)
        return proxy

    yield factory
    for proxy in created:
        proxy.stop()


@pytest.fixture
def chaos_proxy(make_chaos_proxy):
    """A clean-passthrough proxy; inject faults via manual controls."""
    return make_chaos_proxy()


@pytest.fixture
def chaos_client(chaos_proxy):
    """A reconnecting Alib client connected through ``chaos_proxy``."""
    client = AudioClient(port=chaos_proxy.port, client_name="chaos",
                         reconnect=True, request_timeout=5.0)
    yield client
    client.close()
