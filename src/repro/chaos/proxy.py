"""In-process TCP fault-injection proxy.

:class:`ChaosProxy` sits between an Alib client and the audio server,
pumping bytes in both directions through a :class:`.schedule.FaultSchedule`.
Because the server also listens on loopback, the proxy is just another
loopback hop -- no root, no netem, no external tooling -- yet it can
inject every failure the Alib resilience layer must survive: latency,
throttling, truncated writes, mid-message connection resets and full
partitions.

Tests usually drive it through the fixtures in :mod:`.fixtures`::

    proxy = ChaosProxy(("127.0.0.1", server.port),
                       schedule=FaultSchedule(seed=7, reset_probability=0.01))
    proxy.start()
    client = AudioClient(port=proxy.port, reconnect=True)

Manual controls (``sever_all``, ``partition``/``heal``) complement the
schedule for tests that need a fault at an exact moment rather than an
exact byte offset.
"""

from __future__ import annotations

import socket
import threading
import time

from ..obs import MetricsRegistry, NULL_REGISTRY
from .schedule import Decision, DOWN, FaultSchedule, UP

_CHUNK = 65536


class _Link:
    """One proxied client connection: two pump threads and two sockets."""

    def __init__(self, proxy: "ChaosProxy", client_sock: socket.socket,
                 server_sock: socket.socket) -> None:
        self.proxy = proxy
        self.client_sock = client_sock
        self.server_sock = server_sock
        self.closed = False
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._pump, name="chaos-up",
                             args=(UP, client_sock, server_sock), daemon=True),
            threading.Thread(target=self._pump, name="chaos-down",
                             args=(DOWN, server_sock, client_sock),
                             daemon=True),
        ]

    def start(self) -> None:
        for thread in self._threads:
            thread.start()

    def _pump(self, direction: str, source: socket.socket,
              sink: socket.socket) -> None:
        proxy = self.proxy
        try:
            while not self.closed:
                try:
                    chunk = source.recv(_CHUNK)
                except OSError:
                    break
                if not chunk:
                    break
                proxy._wait_if_partitioned()
                decision = proxy._decide(direction, len(chunk))
                if decision.delay > 0:
                    time.sleep(decision.delay)
                if decision.partition:
                    proxy.partition(proxy.schedule.partition_seconds)
                if decision.truncate is not None:
                    proxy._m_truncated.inc()
                    chunk = chunk[:decision.truncate]
                if decision.reset:
                    proxy._m_resets.inc()
                    break
                if chunk:
                    try:
                        sink.sendall(chunk)
                    except OSError:
                        break
                    proxy._count(direction, len(chunk))
        finally:
            self.close()

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
        for sock in (self.client_sock, self.server_sock):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self.proxy._link_closed(self)


class ChaosProxy:
    """A loopback TCP proxy that injects faults from a schedule.

    Listens on an ephemeral port (``proxy.port`` after :meth:`start`)
    and forwards every accepted connection to ``upstream``.  All fault
    decisions come from the shared :class:`FaultSchedule`; with a
    default schedule the proxy is a clean passthrough.
    """

    def __init__(self, upstream: tuple[str, int], *,
                 schedule: FaultSchedule | None = None,
                 host: str = "127.0.0.1",
                 metrics: MetricsRegistry | None = None) -> None:
        self.upstream = upstream
        self.schedule = schedule or FaultSchedule()
        self.host = host
        self.port: int | None = None
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_connections = self.metrics.counter("chaos.connections")
        self._m_resets = self.metrics.counter("chaos.resets")
        self._m_truncated = self.metrics.counter("chaos.truncated_chunks")
        self._m_severed = self.metrics.counter("chaos.severed")
        self._m_bytes_up = self.metrics.counter("chaos.bytes_up")
        self._m_bytes_down = self.metrics.counter("chaos.bytes_down")
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._links: list[_Link] = []
        self._links_lock = threading.Lock()
        self._schedule_lock = threading.Lock()
        #: Cleared while a partition is in force; pumps wait on it.
        self._flowing = threading.Event()
        self._flowing.set()
        self._stopping = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(16)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping = True
        self._flowing.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.sever_all(count_metric=False)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- manual fault controls ------------------------------------------------

    def sever_all(self, count_metric: bool = True) -> int:
        """Hard-close every live link (both halves).  Returns how many."""
        with self._links_lock:
            links = list(self._links)
        for link in links:
            link.close()
        if links and count_metric:
            self._m_severed.inc(len(links))
        return len(links)

    def partition(self, seconds: float | None = None) -> None:
        """Stop forwarding in both directions (until :meth:`heal`).

        With ``seconds`` the partition heals itself from a timer thread,
        so schedule-driven partitions cannot wedge a test forever.
        """
        self._flowing.clear()
        if seconds is not None:
            timer = threading.Timer(seconds, self.heal)
            timer.daemon = True
            timer.start()

    def heal(self) -> None:
        """Resume forwarding after :meth:`partition`."""
        self._flowing.set()

    @property
    def link_count(self) -> int:
        with self._links_lock:
            return len(self._links)

    # -- internals ------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                client_sock, _addr = self._listener.accept()
            except OSError:
                break
            try:
                server_sock = socket.create_connection(self.upstream,
                                                       timeout=5.0)
                server_sock.settimeout(None)
            except OSError:
                client_sock.close()
                continue
            for sock in (client_sock, server_sock):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._m_connections.inc()
            link = _Link(self, client_sock, server_sock)
            with self._links_lock:
                self._links.append(link)
            link.start()

    def _decide(self, direction: str, nbytes: int) -> Decision:
        with self._schedule_lock:
            return self.schedule.decide(direction, nbytes)

    def _wait_if_partitioned(self) -> None:
        self._flowing.wait()

    def _count(self, direction: str, nbytes: int) -> None:
        if direction == UP:
            self._m_bytes_up.inc(nbytes)
        else:
            self._m_bytes_down.inc(nbytes)

    def _link_closed(self, link: _Link) -> None:
        with self._links_lock:
            try:
                self._links.remove(link)
            except ValueError:
                pass
