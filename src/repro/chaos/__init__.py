"""repro.chaos: deterministic fault injection for the audio stack.

The paper's distributed premise -- audio applications talking to a
server across a network -- means the interesting failures are network
failures.  This package makes them reproducible:

* :class:`~repro.chaos.schedule.FaultSchedule` -- a seeded decision
  stream (latency, throttling, truncation, resets, partitions) that
  replays identically for a given seed;
* :class:`~repro.chaos.proxy.ChaosProxy` -- an in-process loopback TCP
  proxy that applies those decisions to live Alib<->server traffic;
* :mod:`~repro.chaos.fixtures` -- a pytest layer so any test can run
  under chaos by asking for a fixture.

See docs/RELIABILITY.md for the fault model and what the client and
server layers promise under it.
"""

from .proxy import ChaosProxy
from .schedule import Decision, DOWN, FaultSchedule, UP

__all__ = [
    "ChaosProxy",
    "DOWN",
    "Decision",
    "FaultSchedule",
    "UP",
]
